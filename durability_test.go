package wqrtq

// Crash-recovery differential suite for the durability layer. The common
// shape: build a deterministic mutation script together with a chain of
// never-persisted oracle snapshots (one per LSN), run the script through a
// durable engine on the fault-injection filesystem, crash/corrupt/reboot,
// recover, and require the recovered index to be bit-identical — across
// TopK, Rank, ReverseTopK, Explain and the WhyNot penalties — to the
// oracle at SOME acknowledged LSN, or recovery to fail loudly with
// ErrCorruptStore. Never silently wrong.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"wqrtq/internal/dataset"
	"wqrtq/internal/sample"
	"wqrtq/internal/storage"
)

// durCfg is the base engine config for a durable engine over fs. Explicit
// checkpoints only (threshold disabled) so operation sequences are
// deterministic for the crash-point sweep.
func durCfg(fs storage.FS) EngineConfig {
	return EngineConfig{DataDir: "data", FS: fs, CheckpointBytes: -1}
}

// battery renders a deterministic query workload over ix as a string of
// ids, ranks and Float64bits-rendered scores, so two indexes answer
// bit-identically iff their batteries are string-equal. whyNot adds the
// (more expensive) why-not refinement penalties.
func battery(tb testing.TB, ix *Index, seed int64, whyNot bool) string {
	tb.Helper()
	d := ix.Dim()
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	var lastQ []float64
	var lastW [][]float64
	lastK := 1
	for round := 0; round < 4; round++ {
		w := []float64(sample.RandSimplex(rng, d))
		q := make([]float64, d)
		for j := range q {
			q[j] = rng.Float64() * 0.6
		}
		k := 1 + rng.Intn(8)
		W := make([][]float64, 3)
		for j := range W {
			W[j] = sample.RandSimplex(rng, d)
		}
		lastQ, lastW, lastK = q, W, k

		top, err := ix.TopK(w, k)
		if err != nil {
			tb.Fatalf("battery TopK: %v", err)
		}
		for _, r := range top {
			fmt.Fprintf(&sb, "t%d:%x ", r.ID, math.Float64bits(r.Score))
		}
		rank, err := ix.Rank(w, q)
		if err != nil {
			tb.Fatalf("battery Rank: %v", err)
		}
		fmt.Fprintf(&sb, "r%d ", rank)
		rt, err := ix.ReverseTopK(W, q, k)
		if err != nil {
			tb.Fatalf("battery ReverseTopK: %v", err)
		}
		fmt.Fprintf(&sb, "b%v ", rt)
		ex, err := ix.Explain(q, W)
		if err != nil {
			tb.Fatalf("battery Explain: %v", err)
		}
		for _, res := range ex {
			fmt.Fprintf(&sb, "e%d", len(res))
			for _, r := range res {
				fmt.Fprintf(&sb, ",%d:%x", r.ID, math.Float64bits(r.Score))
			}
			sb.WriteByte(' ')
		}
	}
	if whyNot {
		ans, err := ix.WhyNot(lastQ, lastK, lastW, Options{SampleSize: 32, Seed: 5})
		if err != nil {
			tb.Fatalf("battery WhyNot: %v", err)
		}
		fmt.Fprintf(&sb, "wn%v|%v|%x|%x:%d|%x:%d", ans.Result, ans.Missing,
			math.Float64bits(ans.ModifiedQuery.Penalty),
			math.Float64bits(ans.ModifiedPreferences.Penalty), ans.ModifiedPreferences.K,
			math.Float64bits(ans.ModifiedAll.Penalty), ans.ModifiedAll.K)
	}
	return sb.String()
}

// mutOp is one scripted mutation; id is the expected assigned id for an
// insert (ids are deterministic: always len(points)) or the victim for a
// delete.
type mutOp struct {
	insert bool
	p      []float64
	id     int
}

// buildScript generates a deterministic mutation script over a base dataset
// and the oracle snapshot chain: oracles[i] is the never-persisted index
// state after the first i mutations (oracles[0] = the seed).
func buildScript(tb testing.TB, pts [][]float64, nMut int, seed int64) ([]mutOp, []*Index) {
	tb.Helper()
	cur, err := NewIndex(pts)
	if err != nil {
		tb.Fatal(err)
	}
	oracles := []*Index{cur}
	live := make([]int, len(pts))
	for i := range live {
		live[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	d := len(pts[0])
	script := make([]mutOp, 0, nMut)
	for i := 0; i < nMut; i++ {
		next := cur.Clone()
		if len(live) == 0 || rng.Float64() < 0.65 {
			p := make([]float64, d)
			for j := range p {
				p[j] = rng.Float64()
			}
			id, err := next.Insert(p)
			if err != nil {
				tb.Fatal(err)
			}
			script = append(script, mutOp{insert: true, p: p, id: id})
			live = append(live, id)
		} else {
			pick := rng.Intn(len(live))
			id := live[pick]
			ok, err := next.Delete(id)
			if err != nil || !ok {
				tb.Fatalf("script delete %d: %v %v", id, ok, err)
			}
			live = append(live[:pick], live[pick+1:]...)
			script = append(script, mutOp{id: id})
		}
		cur = next
		oracles = append(oracles, cur)
	}
	return script, oracles
}

// applyScript feeds the script to a live engine, requesting an explicit
// checkpoint before the mutations whose index is in checkpointAt. It stops
// at the first failed mutation and returns how many were acknowledged.
func applyScript(tb testing.TB, e *Engine, script []mutOp, checkpointAt map[int]bool) (int, error) {
	tb.Helper()
	for i, op := range script {
		if checkpointAt[i] {
			// Best effort: a checkpoint interrupted by an injected crash
			// is exactly what the sweep wants to exercise.
			_ = e.Checkpoint()
		}
		if op.insert {
			id, _, err := e.Insert(op.p)
			if err != nil {
				return i, err
			}
			if id != op.id {
				tb.Fatalf("mutation %d assigned id %d, script expects %d", i, id, op.id)
			}
		} else {
			ok, _, err := e.Delete(op.id)
			if err != nil {
				return i, err
			}
			if !ok {
				tb.Fatalf("mutation %d: delete %d was a no-op", i, op.id)
			}
		}
	}
	return len(script), nil
}

// dumpFaultDir writes the simulated data directory to $WQRTQ_FAULT_DUMP
// (when set — CI sets it and uploads the directory as an artifact) so a
// failing fault-injection case leaves the exact on-disk state behind for
// inspection.
func dumpFaultDir(tb testing.TB, fs *storage.FaultFS) {
	tb.Helper()
	dir := os.Getenv("WQRTQ_FAULT_DUMP")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		tb.Logf("dump fault dir: %v", err)
		return
	}
	if err := fs.DumpTo(dir); err != nil {
		tb.Logf("dump fault dir: %v", err)
		return
	}
	tb.Logf("simulated data directory dumped to %s", dir)
}

func basePoints(shape string, n, d int, seed int64) [][]float64 {
	var ds *dataset.Dataset
	switch shape {
	case "correlated":
		ds = dataset.Correlated(n, d, seed)
	case "anticorrelated":
		ds = dataset.Anticorrelated(n, d, seed)
	default:
		ds = dataset.Independent(n, d, seed)
	}
	pts := make([][]float64, len(ds.Points))
	for i, p := range ds.Points {
		pts[i] = p
	}
	return pts
}

// TestDurableRecoveryDifferential is the headline differential: UN/CO/AC
// shapes × shard counts × fsync policies, a mutation stream with background
// checkpoints, clean shutdown, recovery — and the recovered engine must
// answer every endpoint bit-identically to a never-persisted oracle. The
// recovered engine is opened with a different shard count than the writer,
// so the equality also re-proves shard-independence of results.
func TestDurableRecoveryDifferential(t *testing.T) {
	shapes := []string{"independent", "correlated", "anticorrelated"}
	fsyncs := []string{"always", "interval", "off"}
	for si, shape := range shapes {
		for _, shards := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/shards=%d", shape, shards), func(t *testing.T) {
				pts := basePoints(shape, 200, 3, int64(100+si))
				script, oracles := buildScript(t, pts, 100, int64(7*si+1))
				final := oracles[len(oracles)-1]

				fs := storage.NewFaultFS()
				cfg := durCfg(fs)
				cfg.Shards = shards
				cfg.Fsync = fsyncs[(si+shards)%len(fsyncs)]
				cfg.FsyncInterval = time.Millisecond
				cfg.CheckpointBytes = 4 << 10 // small: force background checkpoints
				seed, err := NewIndex(pts)
				if err != nil {
					t.Fatal(err)
				}
				e, err := NewEngine(seed, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := applyScript(t, e, script, nil); err != nil {
					t.Fatal(err)
				}
				liveBat := battery(t, e.Snapshot(), 42, true)
				if want := battery(t, final, 42, true); liveBat != want {
					t.Fatal("live engine diverged from oracle before any persistence round-trip")
				}
				if err := e.Close(); err != nil {
					t.Fatalf("close: %v", err)
				}

				// Recover into a different shard count; no seed index.
				rcfg := durCfg(fs)
				rcfg.Shards = 4 - shards
				re, err := NewEngine(nil, rcfg)
				if err != nil {
					t.Fatalf("recovery: %v", err)
				}
				defer re.Close()
				ws := re.Stats().WAL
				if !ws.Enabled || ws.Recoveries != 1 {
					t.Fatalf("WAL stats after recovery: %+v", ws)
				}
				if ws.LastLSN != uint64(len(script)) {
					t.Fatalf("recovered LSN %d, want %d", ws.LastLSN, len(script))
				}
				if got := battery(t, re.Snapshot(), 42, true); got != liveBat {
					t.Fatal("recovered engine is not bit-identical to the oracle")
				}
				if err := re.Snapshot().CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestDurableCrashPointSweep enumerates a crash before every single
// state-changing filesystem operation a durable run performs (every write,
// sync, create, rename, remove and dir-sync — including those of two
// checkpoints and the initial snapshot), reboots with torn tails, and
// requires recovery to land exactly on an oracle state: at least every
// acknowledged mutation (fsync=always), at most the one in-flight mutation
// beyond.
func TestDurableCrashPointSweep(t *testing.T) {
	pts := basePoints("independent", 36, 2, 5)
	nMut := 24
	script, oracles := buildScript(t, pts, nMut, 9)
	ckpt := map[int]bool{8: true, 16: true}

	// Baseline run, no crash: learn the total operation count.
	fs0 := storage.NewFaultFS()
	seed, err := NewIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(seed, durCfg(fs0))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := applyScript(t, e, script, ckpt); err != nil || n != nMut {
		t.Fatalf("baseline run: %d acked, %v", n, err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	total := fs0.OpCount()
	if total < 2*nMut {
		t.Fatalf("implausibly few fault sites: %d", total)
	}

	for crashAt := 1; crashAt <= total; crashAt++ {
		fs := storage.NewFaultFS()
		fs.SetCrashAt(crashAt)
		acked := 0
		seed, err := NewIndex(pts)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(seed, durCfg(fs))
		if err == nil {
			acked, _ = applyScript(t, e, script, ckpt)
			e.Close() // fails on the dead filesystem; the error is expected
			if !fs.Crashed() {
				t.Fatalf("crashAt=%d: crash never fired (total=%d)", crashAt, total)
			}
		} else if !errors.Is(err, storage.ErrCrashed) {
			t.Fatalf("crashAt=%d: open failed with %v, want ErrCrashed", crashAt, err)
		}

		for _, rebootSeed := range []int64{1, 2} {
			rfs := fs.Reboot(rebootSeed)
			rcfg := durCfg(rfs)
			rseed, err := NewIndex(pts)
			if err != nil {
				t.Fatal(err)
			}
			re, err := NewEngine(rseed, rcfg)
			if err != nil {
				dumpFaultDir(t, rfs)
				t.Fatalf("crashAt=%d seed=%d: recovery failed: %v", crashAt, rebootSeed, err)
			}
			lsn := re.Stats().WAL.LastLSN
			// fsync=always: every acknowledged mutation was synced before
			// its snapshot published, so it must survive; at most the one
			// unacknowledged in-flight record may additionally appear.
			if lsn < uint64(acked) || lsn > uint64(acked)+1 || lsn > uint64(nMut) {
				dumpFaultDir(t, rfs)
				t.Fatalf("crashAt=%d seed=%d: recovered LSN %d, acked %d", crashAt, rebootSeed, lsn, acked)
			}
			if got, want := battery(t, re.Snapshot(), 11, false), battery(t, oracles[lsn], 11, false); got != want {
				dumpFaultDir(t, rfs)
				t.Fatalf("crashAt=%d seed=%d: recovered state differs from oracle at LSN %d", crashAt, rebootSeed, lsn)
			}
			if err := re.Close(); err != nil {
				t.Fatalf("crashAt=%d seed=%d: close after recovery: %v", crashAt, rebootSeed, err)
			}
		}
	}
}

// TestDurableBitFlipNeverSilentlyWrong flips individual bits across every
// durable file of a finished run and re-opens the store from an exact copy:
// each flip must either be detected (ErrCorruptStore) or leave recovery on
// a valid oracle state (e.g. a flip in the final WAL record is
// indistinguishable from a torn append and drops to the previous LSN; a
// flip in a superseded segment is never read). A recovered-but-wrong
// dataset fails the battery comparison.
func TestDurableBitFlipNeverSilentlyWrong(t *testing.T) {
	pts := basePoints("independent", 40, 3, 3)
	nMut := 30
	script, oracles := buildScript(t, pts, nMut, 4)
	fs := storage.NewFaultFS()
	seed, err := NewIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(seed, durCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := applyScript(t, e, script, map[int]bool{15: true}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(8))
	detected, survived := 0, 0
	for _, name := range fs.Files() {
		data, _ := fs.Bytes(name)
		bits := int64(len(data)) * 8
		for trial := 0; trial < 12; trial++ {
			bit := rng.Int63n(bits)
			if err := fs.FlipBit(name, bit); err != nil {
				t.Fatal(err)
			}
			// Reboot of a fully-synced store is an exact independent copy,
			// so the recovery attempt cannot disturb later iterations.
			rfs := fs.Reboot(1)
			re, err := NewEngine(nil, durCfg(rfs))
			if err != nil {
				if !errors.Is(err, ErrCorruptStore) {
					t.Fatalf("%s bit %d: error %v does not wrap ErrCorruptStore", name, bit, err)
				}
				detected++
			} else {
				lsn := re.Stats().WAL.LastLSN
				if lsn > uint64(nMut) {
					t.Fatalf("%s bit %d: recovered to impossible LSN %d", name, bit, lsn)
				}
				if got, want := battery(t, re.Snapshot(), 13, false), battery(t, oracles[lsn], 13, false); got != want {
					t.Fatalf("%s bit %d: silently wrong recovery at LSN %d", name, bit, lsn)
				}
				survived++
				re.Close()
			}
			if err := fs.FlipBit(name, bit); err != nil {
				t.Fatal(err)
			}
		}
	}
	if detected == 0 || survived == 0 {
		t.Fatalf("degenerate sweep: %d detected, %d survived-valid", detected, survived)
	}
}

// TestDurableSnapshotFallback corrupts the newest snapshot generation and
// requires recovery to fall back to the previous one plus a longer WAL
// replay, landing on the exact final state; with every generation corrupt,
// recovery must refuse.
func TestDurableSnapshotFallback(t *testing.T) {
	pts := basePoints("correlated", 50, 3, 6)
	nMut := 40
	script, oracles := buildScript(t, pts, nMut, 2)
	final := oracles[len(oracles)-1]
	fs := storage.NewFaultFS()
	seed, err := NewIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(seed, durCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := applyScript(t, e, script, map[int]bool{12: true, 28: true}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	var snaps []string
	for _, name := range fs.Files() {
		if strings.HasSuffix(name, ".snap") {
			snaps = append(snaps, name)
		}
	}
	if len(snaps) < 2 {
		t.Fatalf("expected two retained snapshot generations, have %v", snaps)
	}
	newest := snaps[len(snaps)-1]
	sz, _ := fs.Size(newest)
	if err := fs.FlipBit(newest, sz*8/2); err != nil {
		t.Fatal(err)
	}

	rfs := fs.Reboot(3)
	re, err := NewEngine(nil, durCfg(rfs))
	if err != nil {
		t.Fatalf("recovery should fall back past the rotted snapshot: %v", err)
	}
	ws := re.Stats().WAL
	if ws.SnapshotFallbacks == 0 {
		t.Fatalf("recovery did not report a snapshot fallback: %+v", ws)
	}
	if ws.LastLSN != uint64(nMut) {
		t.Fatalf("fallback recovery reached LSN %d, want %d", ws.LastLSN, nMut)
	}
	if got, want := battery(t, re.Snapshot(), 17, true), battery(t, final, 17, true); got != want {
		t.Fatal("fallback recovery is not bit-identical to the oracle")
	}
	re.Close()

	// Rot every snapshot generation (a different bit than above, so the
	// newest snapshot stays corrupt too): recovery must now refuse loudly.
	for _, name := range snaps {
		sz, _ := fs.Size(name)
		if err := fs.FlipBit(name, sz*8/2+9); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := NewEngine(nil, durCfg(fs.Reboot(4))); !errors.Is(err, ErrCorruptStore) {
		t.Fatalf("all-generations-corrupt open: err = %v, want ErrCorruptStore", err)
	}
}

// TestDurableCloseContract pins the Close durability contract under the
// laziest policy (fsync=off): Close flushes and syncs the WAL, post-close
// mutations fail with ErrEngineClosed, Close is idempotent, and a power
// cut immediately after Close loses nothing.
func TestDurableCloseContract(t *testing.T) {
	pts := basePoints("independent", 30, 2, 12)
	nMut := 20
	script, oracles := buildScript(t, pts, nMut, 13)
	fs := storage.NewFaultFS()
	seed, err := NewIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := durCfg(fs)
	cfg.Fsync = "off"
	e, err := NewEngine(seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := applyScript(t, e, script, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, _, err := e.Insert([]float64{0.5, 0.5}); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("post-close Insert: %v", err)
	}
	if _, _, err := e.Delete(0); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("post-close Delete: %v", err)
	}
	if err := e.Checkpoint(); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("post-close Checkpoint: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}

	// Power cut right after Close: under fsync=off nothing was synced per
	// mutation, so surviving here proves Close's final flush+sync.
	re, err := NewEngine(nil, durCfg(fs.Reboot(21)))
	if err != nil {
		t.Fatalf("recovery after close+power-cut: %v", err)
	}
	defer re.Close()
	if lsn := re.Stats().WAL.LastLSN; lsn != uint64(nMut) {
		t.Fatalf("recovered LSN %d, want %d: Close lost acknowledged mutations", lsn, nMut)
	}
	if got, want := battery(t, re.Snapshot(), 19, false), battery(t, oracles[nMut], 19, false); got != want {
		t.Fatal("state after close+power-cut differs from oracle")
	}
}

// TestDurableRaceHammer runs concurrent mutations, queries and background
// checkpoints against a durable engine (run under -race in CI), closes
// cleanly, and proves one recovery cycle lands exactly on the final
// published snapshot.
func TestDurableRaceHammer(t *testing.T) {
	pts := basePoints("independent", 120, 3, 31)
	fs := storage.NewFaultFS()
	seed, err := NewIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := durCfg(fs)
	cfg.Fsync = "interval"
	cfg.FsyncInterval = time.Millisecond
	cfg.CheckpointBytes = 2 << 10
	cfg.CacheSize = 64
	e, err := NewEngine(seed, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 120; i++ {
				if rng.Float64() < 0.7 {
					p := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
					if _, _, err := e.Insert(p); err != nil {
						t.Errorf("hammer insert: %v", err)
						return
					}
				} else {
					id := rng.Intn(e.Snapshot().NumIDs())
					if _, _, err := e.Delete(id); err != nil && !errors.Is(err, ErrInvalidArgument) {
						t.Errorf("hammer delete: %v", err)
						return
					}
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < 120; i++ {
				w := []float64(sample.RandSimplex(rng, 3))
				if _, _, err := e.TopK(w, 5); err != nil {
					t.Errorf("hammer TopK: %v", err)
					return
				}
				q := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
				if _, _, err := e.ReverseTopK([][]float64{w}, q, 4); err != nil {
					t.Errorf("hammer ReverseTopK: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	finalBat := battery(t, e.Snapshot(), 23, false)
	finalLSN := e.Stats().WAL.LastLSN
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	re, err := NewEngine(nil, durCfg(fs.Reboot(77)))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer re.Close()
	if lsn := re.Stats().WAL.LastLSN; lsn != finalLSN {
		t.Fatalf("recovered LSN %d, want %d", lsn, finalLSN)
	}
	if got := battery(t, re.Snapshot(), 23, false); got != finalBat {
		t.Fatal("recovered state differs from the final published snapshot")
	}
	if err := re.Snapshot().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableStatsDisabled pins the ablation: without a data directory the
// WAL stats stay zeroed/disabled and mutations run exactly as before.
func TestDurableStatsDisabled(t *testing.T) {
	e, _ := testEngine(t, 50, 2, EngineConfig{})
	if _, _, err := e.Insert([]float64{0.1, 0.2}); err != nil {
		t.Fatal(err)
	}
	ws := e.Stats().WAL
	if ws.Enabled || ws.LastLSN != 0 || ws.Appends != 0 {
		t.Fatalf("in-memory engine reports durability activity: %+v", ws)
	}
	if err := e.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on an in-memory engine should fail")
	}
	if _, err := NewEngine(nil, EngineConfig{}); err == nil {
		t.Fatal("NewEngine(nil) without a data directory should fail")
	}
}

// TestVerifyDataDirReport exercises the offline checker against a healthy
// store, a rotted-but-recoverable store, and an unrecoverable one.
func TestVerifyDataDirReport(t *testing.T) {
	pts := basePoints("independent", 40, 2, 14)
	nMut := 25
	script, _ := buildScript(t, pts, nMut, 15)
	fs := storage.NewFaultFS()
	seed, err := NewIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(seed, durCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := applyScript(t, e, script, map[int]bool{10: true, 20: true}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := VerifyDataDir(fs, "data")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK || rep.LastLSN != uint64(nMut) || len(rep.Snapshots) == 0 || len(rep.Segments) == 0 {
		t.Fatalf("healthy store: %+v", rep)
	}

	var snaps []string
	for _, name := range fs.Files() {
		if strings.HasSuffix(name, ".snap") {
			snaps = append(snaps, name)
		}
	}
	newest := snaps[len(snaps)-1]
	sz, _ := fs.Size(newest)
	fs.FlipBit(newest, sz*8/2)
	rep, err = VerifyDataDir(fs, "data")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("fallback-recoverable store reported unrecoverable: %+v", rep)
	}
	found := false
	for _, s := range rep.Snapshots {
		if s.Err != "" {
			found = true
		}
	}
	if !found {
		t.Fatal("report does not surface the corrupt snapshot file")
	}

	for _, name := range snaps {
		sz, _ := fs.Size(name)
		fs.FlipBit(name, sz*8/2+1)
	}
	rep, err = VerifyDataDir(fs, "data")
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK || rep.Detail == "" {
		t.Fatalf("unrecoverable store blessed: %+v", rep)
	}
}

// TestCacheDepositEpochGuard is the regression for the one-stale-entry
// window: a result computed against a superseded snapshot must not land in
// the cache after the publish-time sweep has already run.
func TestCacheDepositEpochGuard(t *testing.T) {
	e, _ := testEngine(t, 60, 2, EngineConfig{CacheSize: 16})
	staleKey := cacheKey{epoch: e.Epoch(), key: "q"}
	if _, _, err := e.Insert([]float64{0.3, 0.4}); err != nil {
		t.Fatal(err)
	}
	if e.cache.AddIf(staleKey, 1, e.keepEpoch) {
		t.Fatal("deposit keyed to a superseded epoch was accepted")
	}
	if n := e.cache.Len(); n != 0 {
		t.Fatalf("stale entry stranded in cache (len=%d)", n)
	}
	freshKey := cacheKey{epoch: e.Epoch(), key: "q"}
	if !e.cache.AddIf(freshKey, 1, e.keepEpoch) {
		t.Fatal("current-epoch deposit refused")
	}
	if n := e.cache.Len(); n != 1 {
		t.Fatalf("cache len = %d after live deposit", n)
	}
}
