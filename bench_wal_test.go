package wqrtq

// BenchmarkWAL measures the durability tax on the mutation path — insert
// throughput under each fsync policy against the in-memory baseline — and
// the cost of recovery (snapshot load + WAL tail replay), all over the real
// filesystem. TestRecordBenchWAL records the committed BENCH_wal.json at
// the paper-scale n = 1M configuration:
//
//	RECORD_BENCH=1 go test -run TestRecordBenchWAL .
//
// The index is built once and shared across arms (engines mutate
// copy-on-write clones, never the seed), so the recording pays the 1M-point
// bulk load a single time.

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"wqrtq/internal/dataset"
)

func walBenchIndex(tb testing.TB, n int) *Index {
	tb.Helper()
	ds := dataset.Independent(n, benchDim, 42)
	pts := make([][]float64, len(ds.Points))
	for i, p := range ds.Points {
		pts[i] = p
	}
	ix, err := NewIndex(pts)
	if err != nil {
		tb.Fatal(err)
	}
	return ix
}

// walBenchEngine opens an engine over ix; arm "memory" is the no-DataDir
// baseline, every other arm is a durable engine with that fsync policy and
// background checkpoints disabled (the benchmark isolates the append path).
func walBenchEngine(tb testing.TB, ix *Index, dir, arm string) *Engine {
	tb.Helper()
	cfg := EngineConfig{}
	if arm != "memory" {
		cfg = EngineConfig{DataDir: dir, Fsync: arm, CheckpointBytes: -1}
	}
	e, err := NewEngine(ix, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return e
}

func walBenchInserts(b *testing.B, e *Engine) {
	rng := rand.New(rand.NewSource(9))
	p := make([]float64, benchDim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range p {
			p[j] = rng.Float64()
		}
		if _, _, err := e.Insert(p); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

func BenchmarkWAL(b *testing.B) {
	ix := walBenchIndex(b, 10000)
	for _, arm := range []string{"memory", "off", "interval", "always"} {
		b.Run("insert/fsync="+arm, func(b *testing.B) {
			e := walBenchEngine(b, ix, filepath.Join(b.TempDir(), "state"), arm)
			defer e.Close()
			walBenchInserts(b, e)
		})
	}
	b.Run("recover", func(b *testing.B) {
		dir := filepath.Join(b.TempDir(), "state")
		e := walBenchEngine(b, ix, dir, "off")
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 1000; i++ {
			if _, _, err := e.Insert([]float64{rng.Float64(), rng.Float64(), rng.Float64()}); err != nil {
				b.Fatal(err)
			}
		}
		if err := e.Close(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			re, err := NewEngine(nil, EngineConfig{DataDir: dir, CheckpointBytes: -1})
			if err != nil {
				b.Fatal(err)
			}
			if err := re.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestRecordBenchWAL regenerates BENCH_wal.json at n = 1M: mutation
// throughput across fsync policies plus recovery time (1M-point snapshot
// load + a 1000-record WAL tail replay). Skipped unless RECORD_BENCH is
// set, keeping the recording mechanism compiled and in lockstep with the
// benchmark code it snapshots.
func TestRecordBenchWAL(t *testing.T) {
	if os.Getenv("RECORD_BENCH") == "" {
		t.Skip("set RECORD_BENCH=1 to re-record BENCH_wal.json")
	}
	const n = 1_000_000
	snap := newBenchSnapshot("BenchmarkWAL",
		"Recorded by `RECORD_BENCH=1 go test -run TestRecordBenchWAL .` — the environment fields "+
			"above come from the recording process itself, the data directory lives on that "+
			"machine's filesystem, so the fsync=always row is a property of the recording disk. "+
			"insert rows are single-threaded engine mutations (WAL append + copy-on-write snapshot "+
			"publish; fsync=memory is the no-DataDir in-memory baseline); the recover row is one "+
			"full startup recovery: 1M-point checksummed snapshot load, R-tree reassembly, and a "+
			"1000-record WAL tail replay. Checkpointing is disabled in every arm so the rows "+
			"isolate the append/recovery paths.", n)
	snap.Dataset = map[string]any{"shape": "independent", "n": n, "d": benchDim}

	ix := walBenchIndex(t, n)
	for _, arm := range []string{"memory", "off", "interval", "always"} {
		dir := filepath.Join(t.TempDir(), "state-"+arm)
		e := walBenchEngine(t, ix, dir, arm)
		res := testing.Benchmark(func(b *testing.B) { walBenchInserts(b, e) })
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		ns := float64(res.T.Nanoseconds()) / float64(res.N)
		snap.Results = append(snap.Results, benchRecord{
			N: n, Fsync: arm, Endpoint: "insert",
			Iterations: res.N, NsPerOp: ns, ReqPerSec: 1e9 / ns,
		})
		os.RemoveAll(dir) // each arm's snapshot is ~100MB; don't hold four
	}

	dir := filepath.Join(t.TempDir(), "state-recover")
	e := walBenchEngine(t, ix, dir, "off")
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		if _, _, err := e.Insert([]float64{rng.Float64(), rng.Float64(), rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			re, err := NewEngine(nil, EngineConfig{DataDir: dir, CheckpointBytes: -1})
			if err != nil {
				b.Fatal(err)
			}
			if err := re.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	ns := float64(res.T.Nanoseconds()) / float64(res.N)
	snap.Results = append(snap.Results, benchRecord{
		N: n, Fsync: "off", Endpoint: "recover",
		Iterations: res.N, NsPerOp: ns, ReqPerSec: 1e9 / ns,
	})
	writeBenchSnapshot(t, "BENCH_wal.json", snap)
}
