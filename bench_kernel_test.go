package wqrtq

// BenchmarkKernel measures the blocked SoA scoring kernel on the hot
// endpoints, kernel on vs off (the -kernel=off scalar ablation, skyband on
// in both arms), at the BENCH_shard.json configuration (d = 3, k = 10,
// |W| = 200, |Wm| = 20, |S| = 16) for n in {20k, 100k}.
// TestRecordBenchKernel re-runs the n = 20k cells through
// testing.Benchmark and writes BENCH_kernel.json with the run environment
// recorded from the process itself:
//
//	RECORD_BENCH=1 go test -run TestRecordBenchKernel .
//
// The cross-release trajectory at this configuration is
// BENCH_shard.json → BENCH_skyband.json → BENCH_kernel.json (see README).

import (
	"fmt"
	"os"
	"testing"
)

func newKernelBenchEnv(tb testing.TB, n int, kernelOn bool) *skybandBenchEnv {
	tb.Helper()
	env := newSkybandBenchEnv(tb, n, true)
	env.ix.SetKernel(kernelOn)
	return env
}

func BenchmarkKernel(b *testing.B) {
	for _, n := range []int{20000, 100000} {
		for _, mode := range []string{"on", "off"} {
			env := newKernelBenchEnv(b, n, mode == "on")
			for _, ep := range skybandBenchEndpoints {
				b.Run(fmt.Sprintf("n=%d/kernel=%s/%s", n, mode, ep), func(b *testing.B) {
					env.run(b, ep)
				})
			}
		}
	}
}

// TestRecordBenchKernel regenerates BENCH_kernel.json. It is skipped
// unless RECORD_BENCH is set, keeping the recording mechanism compiled and
// in lockstep with the benchmark code it snapshots.
func TestRecordBenchKernel(t *testing.T) {
	if os.Getenv("RECORD_BENCH") == "" {
		t.Skip("set RECORD_BENCH=1 to re-record BENCH_kernel.json")
	}
	const n = 20000
	snap := newBenchSnapshot("BenchmarkKernel",
		"Recorded by `RECORD_BENCH=1 go test -run TestRecordBenchKernel .` — the environment "+
			"fields above come from the recording process itself. kernel=off preserves the scalar "+
			"per-weight execution paths (the -kernel=off ablation) with the skyband sub-index on in "+
			"both arms; results are bit-identical either way (TestKernelDifferential, "+
			"TestKernelWhyNotPenalties). Compare the kernel=on rows against BENCH_skyband.json's "+
			"skyband=on rows (same dataset configuration) for the cross-release trajectory "+
			"BENCH_shard → BENCH_skyband → BENCH_kernel.", n)
	for _, mode := range []string{"on", "off"} {
		env := newKernelBenchEnv(t, n, mode == "on")
		// Warm the epoch caches so the recorded steady-state numbers do
		// not fold one-time band construction into the first iteration.
		if _, err := env.ix.ReverseTopK(env.W, env.q, benchK); err != nil {
			t.Fatal(err)
		}
		for _, ep := range skybandBenchEndpoints {
			res := testing.Benchmark(func(b *testing.B) { env.run(b, ep) })
			ns := float64(res.T.Nanoseconds()) / float64(res.N)
			snap.Results = append(snap.Results, benchRecord{
				N: n, Skyband: "on", Kernel: mode, Endpoint: ep,
				Iterations: res.N, NsPerOp: ns, ReqPerSec: 1e9 / ns,
			})
		}
	}
	writeBenchSnapshot(t, "BENCH_kernel.json", snap)
}
