package wqrtq

// Chaos suite for the overload and degradation surfaces: transient WAL
// hiccups must heal through the retry ladder without degrading, persistent
// I/O failure must transition to read-only exactly once with queries still
// bit-identical to a healthy engine, Reopen must clear the state, and the
// admission door must shed under synthetic overload while the engine stays
// correct. The durability scenarios run on the fault-injection filesystem;
// no real disks are harmed.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"wqrtq/internal/admission"
	"wqrtq/internal/storage"
)

// TestWALTransientHiccupRecovers: a one-shot injected WAL error must be
// absorbed by the retry ladder — the mutation succeeds, the engine stays
// healthy, and the resulting durable state still recovers bit-identically.
func TestWALTransientHiccupRecovers(t *testing.T) {
	pts := basePoints("independent", 120, 3, 9)
	script, oracles := buildScript(t, pts, 30, 3)
	final := oracles[len(oracles)-1]

	fs := storage.NewFaultFS()
	seed, err := NewIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(seed, durCfg(fs))
	if err != nil {
		t.Fatal(err)
	}

	// First half clean, then a single injected failure lands on the next
	// WAL append; the ladder must recover the writer and retry through.
	half := len(script) / 2
	if n, err := applyScript(t, e, script[:half], nil); err != nil || n != half {
		t.Fatalf("clean half: %d acked, %v", n, err)
	}
	fs.InjectFailures(1)
	if n, err := applyScript(t, e, script[half:], nil); err != nil || n != len(script)-half {
		dumpFaultDir(t, fs)
		t.Fatalf("hiccup half: %d acked, %v", n, err)
	}
	if fs.InjectedCount() != 1 {
		t.Fatalf("injected %d failures, want 1", fs.InjectedCount())
	}

	ws := e.Stats().WAL
	if ws.Degraded || ws.Degradations != 0 {
		t.Fatalf("transient hiccup degraded the engine: %+v", ws)
	}
	if ws.Retries == 0 || ws.WriterRecoveries == 0 {
		t.Fatalf("retry ladder did not run: %+v", ws)
	}
	if h := e.Health(); !h.Live || !h.Ready || h.Degraded {
		t.Fatalf("health after transient hiccup: %+v", h)
	}
	liveBat := battery(t, e.Snapshot(), 42, false)
	if want := battery(t, final, 42, false); liveBat != want {
		t.Fatal("engine diverged from oracle across the retry ladder")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// The recovered directory must reproduce the same state: the writer
	// recovery's snapshot-then-rotate left a verifiable chain behind.
	re, err := NewEngine(nil, durCfg(fs))
	if err != nil {
		dumpFaultDir(t, fs)
		t.Fatalf("recovery after hiccup: %v", err)
	}
	defer re.Close()
	if got := battery(t, re.Snapshot(), 42, false); got != liveBat {
		dumpFaultDir(t, fs)
		t.Fatal("recovered engine is not bit-identical after a retried append")
	}
}

// TestWALPersistentFailureDegradesReadOnly is the degradation-ladder proof:
// persistent WAL failure exhausts the retry budget, the engine transitions
// to read-only exactly once, mutations fail with ErrDegraded, queries stay
// bit-identical to a healthy engine over the same data, and a successful
// Reopen clears the state.
func TestWALPersistentFailureDegradesReadOnly(t *testing.T) {
	pts := basePoints("correlated", 150, 3, 11)
	script, oracles := buildScript(t, pts, 20, 5)

	fs := storage.NewFaultFS()
	seed, err := NewIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := durCfg(fs)
	cfg.WALRetryBackoff = 100 * time.Microsecond // keep the ladder fast under test
	e, err := NewEngine(seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if n, err := applyScript(t, e, script, nil); err != nil || n != len(script) {
		t.Fatalf("setup script: %d acked, %v", n, err)
	}
	healthy := oracles[len(oracles)-1]

	// The device goes away for good: every further op fails.
	fs.InjectFailures(1 << 30)
	_, _, err = e.Insert([]float64{0.5, 0.5, 0.5})
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("mutation on failing device: got %v, want ErrDegraded", err)
	}
	var de *DegradedError
	if !errors.As(err, &de) || de.Reason != "wal_append" {
		t.Fatalf("degraded error: %v", err)
	}
	if !errors.Is(de.Unwrap(), storage.ErrInjected) {
		t.Fatalf("degraded cause: %v", de.Unwrap())
	}

	// Exactly one transition, no matter how many mutations keep failing.
	if _, _, err := e.Insert([]float64{0.1, 0.2, 0.3}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("second mutation: %v", err)
	}
	if ok, _, err := e.Delete(0); ok || !errors.Is(err, ErrDegraded) {
		t.Fatalf("delete while degraded: %v %v", ok, err)
	}
	ws := e.Stats().WAL
	if !ws.Degraded || ws.DegradedReason != "wal_append" || ws.Degradations != 1 {
		t.Fatalf("WAL stats while degraded: %+v", ws)
	}
	if h := e.Health(); !h.Live || !h.Ready || !h.Degraded || h.Reason != "wal_append" {
		t.Fatalf("health while degraded: %+v", h)
	}

	// The point of read-only mode: queries still serve, bit-identical to a
	// healthy engine over the same acknowledged data.
	if got, want := battery(t, e.Snapshot(), 77, true), battery(t, healthy, 77, true); got != want {
		t.Fatal("degraded engine queries diverge from the healthy oracle")
	}

	// Reopen with the device still failing: stays degraded.
	if err := e.Reopen(); err == nil {
		t.Fatal("Reopen succeeded while the device is still failing")
	}
	if h := e.Health(); !h.Degraded {
		t.Fatal("failed Reopen cleared the degraded state")
	}

	// Operator fixes the device: Reopen clears the latch and mutations flow.
	fs.InjectFailures(0)
	if err := e.Reopen(); err != nil {
		dumpFaultDir(t, fs)
		t.Fatalf("Reopen after device recovery: %v", err)
	}
	if h := e.Health(); h.Degraded {
		t.Fatalf("health after Reopen: %+v", h)
	}
	id, _, err := e.Insert([]float64{0.4, 0.4, 0.4})
	if err != nil {
		t.Fatalf("mutation after Reopen: %v", err)
	}
	if ws := e.Stats().WAL; ws.Degraded || ws.Degradations != 1 {
		t.Fatalf("WAL stats after Reopen: %+v", ws)
	}

	// And the durable state survives a restart, insert included.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := NewEngine(nil, durCfg(fs))
	if err != nil {
		dumpFaultDir(t, fs)
		t.Fatalf("recovery after degrade/reopen cycle: %v", err)
	}
	defer re.Close()
	if re.Snapshot().Point(id) == nil {
		t.Fatal("post-Reopen insert lost across recovery")
	}
}

// TestCheckpointFailureStreakDegrades: one failed checkpoint is retried and
// proves nothing; checkpointDegradeStreak consecutive failures latch
// read-only mode with reason checkpoint_io.
func TestCheckpointFailureStreakDegrades(t *testing.T) {
	pts := basePoints("independent", 60, 2, 3)
	fs := storage.NewFaultFS()
	seed, err := NewIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(seed, durCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, _, err := e.Insert([]float64{0.3, 0.7}); err != nil {
		t.Fatal(err)
	}

	// One failure: healthy, retried later.
	fs.InjectFailures(1)
	if err := e.Checkpoint(); err == nil {
		t.Fatal("checkpoint succeeded despite injected failure")
	}
	if e.Stats().WAL.Degraded {
		t.Fatal("single checkpoint failure degraded the engine")
	}
	// A success in between heals the streak.
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// A persistent streak degrades. Each attempt needs fresh WAL progress
	// (a checkpoint at an unchanged LSN is a no-op), and the append itself
	// must succeed, so inject failures only around the checkpoint call.
	for i := 0; i < checkpointDegradeStreak; i++ {
		if _, _, err := e.Insert([]float64{0.1 * float64(i+1), 0.5}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		fs.InjectFailures(1)
		if err := e.Checkpoint(); err == nil {
			t.Fatalf("checkpoint %d succeeded despite injected failure", i)
		}
		fs.InjectFailures(0)
	}
	ws := e.Stats().WAL
	if !ws.Degraded || ws.DegradedReason != "checkpoint_io" {
		t.Fatalf("WAL stats after checkpoint streak: %+v", ws)
	}
	if _, _, err := e.Insert([]float64{0.9, 0.9}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("mutation after checkpoint degrade: %v", err)
	}
	if err := e.Reopen(); err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	if _, _, err := e.Insert([]float64{0.8, 0.8}); err != nil {
		t.Fatalf("mutation after Reopen: %v", err)
	}
}

// TestCloseCheckpointRace regresses the Close-vs-background-checkpoint
// race: with an aggressive checkpoint threshold, mutations racing Close
// must never leave a checkpoint goroutine doing filesystem work after
// Close returns. Run with -race.
func TestCloseCheckpointRace(t *testing.T) {
	pts := basePoints("independent", 40, 2, 7)
	for iter := 0; iter < 25; iter++ {
		fs := storage.NewFaultFS()
		seed, err := NewIndex(pts)
		if err != nil {
			t.Fatal(err)
		}
		cfg := durCfg(fs)
		cfg.CheckpointBytes = 1 // every mutation crosses the threshold
		e, err := NewEngine(seed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, _, err := e.Insert([]float64{0.2, 0.4}); err != nil {
					if !errors.Is(err, ErrEngineClosed) {
						t.Errorf("iter %d insert: %v", iter, err)
					}
					return
				}
			}
		}()
		if err := e.Close(); err != nil {
			t.Fatalf("iter %d close: %v", iter, err)
		}
		wg.Wait()
		// Once Close has returned the data directory must be quiescent: no
		// straggler checkpoint goroutine still writing.
		ops := fs.OpCount()
		time.Sleep(2 * time.Millisecond)
		if got := fs.OpCount(); got != ops {
			t.Fatalf("iter %d: filesystem ops after Close: %d -> %d", iter, ops, got)
		}
		// And the directory recovers.
		re, err := NewEngine(nil, durCfg(fs))
		if err != nil {
			dumpFaultDir(t, fs)
			t.Fatalf("iter %d recovery: %v", iter, err)
		}
		re.Close()
	}
}

// TestAdmissionShedsUnderOverload launches far more concurrent writers than
// the admission window allows while WAL I/O is stalled (the chaos model of
// a saturated device). The stall keeps the mutation lock held so the
// writers genuinely pile up at the door: the excess must be shed with
// ErrOverloaded/concurrency_limit, every admitted write must commit, the
// query class must keep answering throughout (classes are isolated), and
// the inflight gauge must return to zero.
func TestAdmissionShedsUnderOverload(t *testing.T) {
	fs := storage.NewFaultFS()
	pts := basePoints("independent", 200, 3, 13)
	ix, err := NewIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := durCfg(fs)
	cfg.Admission = true
	cfg.AdmissionMaxInflight = 4
	cfg.CacheSize = -1 // cache hits bypass the door; force every query through it
	e, err := NewEngine(ix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Every WAL write and sync now sleeps: the first admitted writer holds
	// e.mu inside the stalled append while the rest arrive, so concurrent
	// pressure at the door is real even on one CPU.
	fs.SetOpDelay(2 * time.Millisecond)

	const writers = 32
	var wg sync.WaitGroup
	var mu sync.Mutex
	var served, shed int
	var unexpected error
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, _, err := e.Insert([]float64{0.1 + 0.001*float64(g), 0.2, 0.3})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				served++
			case errors.Is(err, ErrOverloaded):
				var oe *OverloadError
				if !errors.As(err, &oe) || oe.Reason != admission.ReasonConcurrency {
					unexpected = err
					return
				}
				shed++
			default:
				unexpected = err
			}
		}(g)
	}

	// While the writers are piled up behind the stalled WAL, the query
	// class keeps serving from the immutable snapshot.
	W := [][]float64{{0.2, 0.3, 0.5}, {0.5, 0.3, 0.2}}
	q := []float64{0.3, 0.4, 0.3}
	if _, err := e.ReverseTopKCtx(context.Background(), ReverseTopKRequest{Q: q, K: 5, W: W}); err != nil {
		t.Fatalf("query during mutation overload: %v", err)
	}
	wg.Wait()
	fs.SetOpDelay(0)

	if unexpected != nil {
		t.Fatalf("unexpected error under overload: %v", unexpected)
	}
	if served == 0 || shed == 0 {
		t.Fatalf("overload did not exercise both paths: served %d, shed %d", served, shed)
	}
	// Every admitted write committed; every shed write cost nothing.
	if got := e.Snapshot().Len(); got != len(pts)+served {
		t.Fatalf("snapshot has %d points, want %d base + %d served", got, len(pts), served)
	}
	// The quiesced engine answers bit-identically to the snapshot's direct
	// result: admission sheds load, never correctness.
	resp, err := e.ReverseTopKCtx(context.Background(), ReverseTopKRequest{Q: q, K: 5, W: W})
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Snapshot().ReverseTopK(W, q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result) != len(want) {
		t.Fatalf("admitted result diverges: %v vs %v", resp.Result, want)
	}
	for i := range want {
		if resp.Result[i] != want[i] {
			t.Fatalf("admitted result diverges: %v vs %v", resp.Result, want)
		}
	}
	st := e.Stats().Admission
	if st == nil {
		t.Fatal("admission stats missing")
	}
	ms := st["mutation"]
	if ms.Inflight != 0 {
		t.Fatalf("inflight leaked: %d", ms.Inflight)
	}
	if ms.ShedConcurrency == 0 || ms.Admitted == 0 {
		t.Fatalf("admission stats inert: %+v", ms)
	}
}

// TestAdmissionDoomedDeadlineAtDoor: once the query class has an observed
// p50, a request arriving with less remaining budget than that is rejected
// at the door with ErrOverloaded before costing a queue slot.
func TestAdmissionDoomedDeadlineAtDoor(t *testing.T) {
	pts := basePoints("independent", 100, 3, 17)
	ix, err := NewIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(ix, EngineConfig{Admission: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Teach the tracker a 50ms p50 through the chaos hook.
	for i := 0; i < 64; i++ {
		e.Admission().Observe(admission.Query, 50*time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err = e.ReverseTopKCtx(ctx, ReverseTopKRequest{Q: []float64{0.5, 0.5, 0.5}, K: 3, W: [][]float64{{0.3, 0.3, 0.4}}})
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != admission.ReasonDoomed {
		t.Fatalf("doomed request: got %v, want doomed_deadline shed", err)
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("doomed shed carries no retry hint: %+v", oe)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatal("OverloadError does not match ErrOverloaded")
	}

	// Ample budget passes and answers correctly.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if _, err := e.ReverseTopKCtx(ctx2, ReverseTopKRequest{Q: []float64{0.5, 0.5, 0.5}, K: 3, W: [][]float64{{0.3, 0.3, 0.4}}}); err != nil {
		t.Fatalf("ample-budget query: %v", err)
	}
}

// TestAdmissionOffIsInert: with admission disabled (the library default)
// the controller is absent, stats omit the section, and behavior matches
// the pre-admission engine.
func TestAdmissionOffIsInert(t *testing.T) {
	pts := basePoints("independent", 50, 2, 19)
	ix, err := NewIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(ix, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Admission() != nil {
		t.Fatal("admission controller present despite Admission=false")
	}
	if st := e.Stats().Admission; st != nil {
		t.Fatalf("admission stats present despite Admission=false: %+v", st)
	}
	if _, err := e.ReverseTopKCtx(context.Background(), ReverseTopKRequest{Q: []float64{0.5, 0.5}, K: 3, W: [][]float64{{0.5, 0.5}}}); err != nil {
		t.Fatalf("query with admission off: %v", err)
	}
}

// TestAdmissionInjectedFaults: the chaos hooks shed and delay real engine
// requests, so the load harness can manufacture overload without load.
func TestAdmissionInjectedFaults(t *testing.T) {
	pts := basePoints("independent", 50, 2, 23)
	ix, err := NewIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(ix, EngineConfig{Admission: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Admission().InjectErrors(1)
	_, err = e.ReverseTopKCtx(context.Background(), ReverseTopKRequest{Q: []float64{0.5, 0.5}, K: 3, W: [][]float64{{0.5, 0.5}}})
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != admission.ReasonInjected {
		t.Fatalf("injected fault: got %v", err)
	}
	if _, err := e.ReverseTopKCtx(context.Background(), ReverseTopKRequest{Q: []float64{0.5, 0.5}, K: 3, W: [][]float64{{0.5, 0.5}}}); err != nil {
		t.Fatalf("after budget spent: %v", err)
	}
}
