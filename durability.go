package wqrtq

// Durability: a paged snapshot store plus a mutation write-ahead log.
//
// When EngineConfig.DataDir is set, the engine persists its state so a
// restart recovers exactly the dataset it was serving:
//
//   - every effective mutation is appended to a WAL segment (internal/wal)
//     and — under the default fsync=always policy — synced before the new
//     snapshot is published, so an acknowledged mutation survives any
//     crash;
//   - a background checkpointer serializes the current immutable snapshot
//     (internal/pagestore) once the segment exceeds CheckpointBytes. The
//     copy-on-write discipline makes this free of coordination: a
//     published *Index is never mutated, so the checkpointer walks it
//     while queries and further mutations proceed;
//   - startup loads the newest snapshot whose checksums verify (falling
//     back to the previous generation if the newest rotted), replays the
//     WAL chain above it, drops a torn final record, and refuses with
//     ErrCorruptStore when durable bytes fail to verify — never serving a
//     silently wrong dataset.
//
// On-disk layout of a data directory:
//
//	snap-<lsn>.snap   paged snapshot covering mutations 1..lsn
//	wal-<base>.wal    mutation records base+1, base+2, ...
//	*.tmp             checkpoint in progress; removed at startup
//
// Each mutation carries a log sequence number (LSN), 1 + the LSN before
// it. A checkpoint at LSN L rotates the log (creating wal-L) and then
// writes snap-L; retention keeps the two newest snapshot generations and
// every segment at or above the older one, so a single rotted snapshot
// file falls back to the previous generation plus a longer replay.
// Recovery enforces the chain invariants — segment bases must continue
// exactly where the snapshot or previous segment ended, records must be
// LSN-contiguous, and only the newest segment may end in a torn tail;
// any other damage is corruption, detected and refused.
//
// With DataDir unset none of this code runs and the engine behaves
// exactly as before: pure in-memory, byte-for-byte identical results.

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wqrtq/internal/cellindex"
	"wqrtq/internal/kernel"
	"wqrtq/internal/pagestore"
	"wqrtq/internal/rtree"
	"wqrtq/internal/skyband"
	"wqrtq/internal/storage"
	"wqrtq/internal/vec"
	"wqrtq/internal/wal"
)

// ErrCorruptStore reports a data directory whose durable bytes fail
// checksum or chain verification. The engine refuses to open (and verify
// refuses to bless) such a directory rather than serve from it.
var ErrCorruptStore = errors.New("wqrtq: data directory is corrupt")

// DefaultCheckpointBytes is the WAL-size threshold that triggers a
// background checkpoint when EngineConfig.CheckpointBytes is zero.
const DefaultCheckpointBytes = 64 << 20

// WALStats surfaces the durability counters in EngineStats and /v1/stats.
type WALStats struct {
	// Enabled is false when the engine runs pure in-memory (no DataDir).
	Enabled bool `json:"enabled"`
	// Fsync is the active policy: always, interval or off.
	Fsync string `json:"fsync,omitempty"`
	// LastLSN is the sequence number of the last logged mutation;
	// SnapshotLSN is the last mutation covered by the newest durable
	// snapshot. The difference is the replay the next restart pays.
	LastLSN     uint64 `json:"last_lsn"`
	SnapshotLSN uint64 `json:"snapshot_lsn"`
	// WALBytes is the size of the current segment — the value compared
	// against the checkpoint threshold.
	WALBytes int64 `json:"wal_bytes"`
	// Appends and Syncs count WAL record appends and file syncs.
	Appends int64 `json:"appends"`
	Syncs   int64 `json:"syncs"`
	// Checkpoints counts completed snapshot checkpoints;
	// CheckpointFailures counts aborted or failed ones.
	Checkpoints        int64 `json:"checkpoints"`
	CheckpointFailures int64 `json:"checkpoint_failures"`
	// Recoveries is 1 when this engine recovered from durable state at
	// startup (0 for a fresh directory). ReplayedRecords, TornTailDrops
	// and SnapshotFallbacks describe that recovery: WAL records re-applied,
	// torn final records discarded, and snapshot generations skipped
	// because their checksums failed.
	Recoveries        int64 `json:"recoveries"`
	ReplayedRecords   int64 `json:"replayed_records"`
	TornTailDrops     int64 `json:"torn_tail_drops"`
	SnapshotFallbacks int64 `json:"snapshot_fallbacks"`
	// Degraded reports read-only mode: persistent WAL or checkpoint I/O
	// failure exhausted the retry budget; mutations fail with ErrDegraded
	// until Engine.Reopen succeeds, queries are unaffected.
	// DegradedReason is wal_append or checkpoint_io; Degradations counts
	// transitions into the state over the engine's lifetime.
	Degraded       bool   `json:"degraded"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	Degradations   int64  `json:"degradations"`
	// Retries counts WAL append retry attempts (each preceded by a
	// backoff and a writer recovery); WriterRecoveries counts the
	// snapshot-then-rotate recoveries that replaced a poisoned writer.
	Retries          int64 `json:"retries"`
	WriterRecoveries int64 `json:"writer_recoveries"`
}

// durable is the engine's durability state. Lock order: e.mu before d.mu.
// The mutation path (under e.mu) appends and syncs before the snapshot is
// published; the checkpointer captures (snapshot, LSN) and rotates the log
// under e.mu, then serializes without any lock.
type durable struct {
	fs        storage.FS
	dir       string
	policy    wal.Policy
	policyStr string
	interval  time.Duration
	threshold int64

	// retries and backoff shape the append retry loop (appendRetry):
	// retries attempts, each after a jittered exponential backoff
	// starting at backoff, before the engine degrades to read-only.
	retries int
	backoff time.Duration

	mu          sync.Mutex // guards w, lastLSN, snapLSN, appendsBase, syncsBase, closing, degReason
	w           *wal.Writer
	lastLSN     uint64
	snapLSN     uint64
	appendsBase int64 // counters of rotated-out segments
	syncsBase   int64
	closing     bool   // close has begun; refuse new background work
	degReason   string // why degraded (valid while degraded is true)
	degCause    error

	checkpointing atomic.Bool
	stop          chan struct{}
	wg            sync.WaitGroup
	closeOnce     sync.Once
	closeErr      error

	// degraded is the read-only latch: set (exactly once per transition)
	// when the retry budget is exhausted, cleared only by a successful
	// Engine.Reopen.
	degraded     atomic.Bool
	degradations atomic.Int64
	walRetries   atomic.Int64
	wRecoveries  atomic.Int64
	// ckptFailStreak counts consecutive checkpoint failures; a streak of
	// checkpointDegradeStreak degrades the engine (one failed checkpoint
	// is retried at the next threshold crossing and proves nothing about
	// the device).
	ckptFailStreak atomic.Int64

	checkpoints     atomic.Int64
	checkpointFails atomic.Int64
	recoveries      atomic.Int64
	replayed        atomic.Int64
	tornDrops       atomic.Int64
	fallbacks       atomic.Int64
}

// checkpointDegradeStreak is how many consecutive checkpoint failures
// transition the engine to read-only.
const checkpointDegradeStreak = 3

// Defaults for the WAL append retry loop.
const (
	defaultWALRetries      = 3
	defaultWALRetryBackoff = 2 * time.Millisecond
)

// newIndexFromParts wires a recovered tree and id-indexed points table
// into a full Index, mirroring NewIndex's sub-index setup without the
// validation and bulk load (the parts came from verified durable state).
func newIndexFromParts(tree *rtree.Tree, points []vec.Point) *Index {
	ix := &Index{tree: tree, points: points, sky: skyband.NewCache(tree, nil), kct: kernel.NewCounters(), cct: cellindex.NewCounters()}
	ix.cells = cellindex.NewCache(ix.sky, tree.Dim(), ix.cct)
	return ix
}

// recInfo summarizes one recovery pass.
type recInfo struct {
	recovered bool // durable state existed (false: fresh directory)
	lastLSN   uint64
	snapLSN   uint64
	replayed  int64
	tornDrops int64
	fallbacks int64
}

// scanDataDir partitions a data directory into snapshot LSNs (descending),
// segment base LSNs (ascending) and leftover temp files.
func scanDataDir(fs storage.FS, dir string) (snaps, wals []uint64, tmps []string, err error) {
	names, err := fs.List(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, n := range names {
		if strings.HasSuffix(n, ".tmp") {
			tmps = append(tmps, n)
			continue
		}
		if lsn, ok := pagestore.ParseSnapshotName(n); ok {
			snaps = append(snaps, lsn)
			continue
		}
		if base, ok := wal.ParseSegmentName(n); ok {
			wals = append(wals, base)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] })
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	return snaps, wals, tmps, nil
}

func readSnapshotFile(fs storage.FS, dir string, lsn uint64) (*pagestore.Snapshot, error) {
	f, err := fs.Open(filepath.Join(dir, pagestore.SnapshotName(lsn)))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	snap, err := pagestore.Read(f)
	if err != nil {
		return nil, err
	}
	if snap.LastLSN != lsn {
		return nil, fmt.Errorf("%w: snapshot %s declares LSN %d", pagestore.ErrCorrupt, pagestore.SnapshotName(lsn), snap.LastLSN)
	}
	return snap, nil
}

// recoverState rebuilds the index from dir: newest verifiable snapshot
// plus the WAL chain above it. A fresh directory returns (nil, zero
// recInfo, nil); damaged durable state returns an error wrapping
// ErrCorruptStore.
func recoverState(fs storage.FS, dir string) (*Index, recInfo, error) {
	var info recInfo
	snaps, wals, _, err := scanDataDir(fs, dir)
	if err != nil {
		return nil, info, err
	}
	if len(snaps) == 0 {
		if len(wals) == 0 {
			return nil, info, nil
		}
		return nil, info, fmt.Errorf("%w: %d WAL segments but no snapshot", ErrCorruptStore, len(wals))
	}

	var snap *pagestore.Snapshot
	var firstErr error
	for i, lsn := range snaps {
		s, err := readSnapshotFile(fs, dir, lsn)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		snap = s
		info.fallbacks = int64(i)
		break
	}
	if snap == nil {
		return nil, info, fmt.Errorf("%w: none of %d snapshots verifies: %v", ErrCorruptStore, len(snaps), firstErr)
	}
	info.recovered = true
	info.snapLSN = snap.LastLSN
	ix := newIndexFromParts(snap.Tree, snap.Points)

	// Replay every segment at or above the recovered snapshot. The chain
	// must start exactly at the snapshot's LSN, each segment must end
	// exactly where the next begins, and only the final segment may be
	// torn. (Segments below the snapshot are previous-generation history
	// retained for fallback; their records are already in the snapshot.)
	var chain []uint64
	for _, base := range wals {
		if base >= info.snapLSN {
			chain = append(chain, base)
		}
	}
	info.lastLSN = info.snapLSN
	if len(chain) > 0 && chain[0] != info.snapLSN {
		return nil, info, fmt.Errorf("%w: WAL chain starts at %d, snapshot covers %d", ErrCorruptStore, chain[0], info.snapLSN)
	}
	for i, base := range chain {
		res, err := wal.Replay(fs, filepath.Join(dir, wal.SegmentName(base)), base,
			func(kind int, lsn, id uint64, p vec.Point) error {
				switch kind {
				case wal.KindInsert:
					got, err := ix.Insert(p)
					if err != nil {
						return fmt.Errorf("%w: replay LSN %d: %v", ErrCorruptStore, lsn, err)
					}
					if uint64(got) != id {
						return fmt.Errorf("%w: replay LSN %d assigned id %d, log recorded %d", ErrCorruptStore, lsn, got, id)
					}
				case wal.KindDelete:
					ok, err := ix.Delete(int(id))
					if err != nil {
						return fmt.Errorf("%w: replay LSN %d: %v", ErrCorruptStore, lsn, err)
					}
					if !ok {
						return fmt.Errorf("%w: replay LSN %d deletes id %d, which is not live", ErrCorruptStore, lsn, id)
					}
				default:
					return fmt.Errorf("%w: replay LSN %d: unknown kind %d", ErrCorruptStore, lsn, kind)
				}
				return nil
			})
		if err != nil {
			if errors.Is(err, ErrCorruptStore) {
				return nil, info, err
			}
			return nil, info, fmt.Errorf("%w: segment %s: %v", ErrCorruptStore, wal.SegmentName(base), err)
		}
		last := i == len(chain)-1
		if res.TornBytes > 0 {
			if !last {
				return nil, info, fmt.Errorf("%w: segment %s is torn but not the newest", ErrCorruptStore, wal.SegmentName(base))
			}
			info.tornDrops++
		}
		if !last && res.LastLSN != chain[i+1] {
			return nil, info, fmt.Errorf("%w: segment %s ends at LSN %d, next segment starts at %d",
				ErrCorruptStore, wal.SegmentName(base), res.LastLSN, chain[i+1])
		}
		info.replayed += int64(res.Records)
		info.lastLSN = res.LastLSN
	}
	return ix, info, nil
}

// openDurable opens (or initializes) cfg.DataDir and returns the index the
// engine must serve plus the durability state. Durable state wins: when
// the directory already holds a dataset, seed is ignored and the recovered
// index is returned.
func openDurable(seed *Index, cfg EngineConfig) (*Index, *durable, error) {
	fs := cfg.FS
	if fs == nil {
		fs = storage.OS()
	}
	policy, err := wal.PolicyFromString(cfg.Fsync)
	if err != nil {
		return nil, nil, invalidArg(err)
	}
	policyStr := cfg.Fsync
	if policyStr == "" {
		policyStr = "always"
	}
	d := &durable{
		fs:        fs,
		dir:       cfg.DataDir,
		policy:    policy,
		policyStr: policyStr,
		interval:  cfg.FsyncInterval,
		threshold: cfg.CheckpointBytes,
		retries:   cfg.WALRetries,
		backoff:   cfg.WALRetryBackoff,
		stop:      make(chan struct{}),
	}
	if d.interval <= 0 {
		d.interval = wal.IntervalDefault
	}
	if d.threshold == 0 {
		d.threshold = DefaultCheckpointBytes
	}
	if d.retries == 0 {
		d.retries = defaultWALRetries
	} else if d.retries < 0 {
		d.retries = 0
	}
	if d.backoff <= 0 {
		d.backoff = defaultWALRetryBackoff
	}
	if err := fs.MkdirAll(d.dir); err != nil {
		return nil, nil, err
	}
	// Clear leftover checkpoint temporaries before recovery looks around.
	_, _, tmps, err := scanDataDir(fs, d.dir)
	if err != nil {
		return nil, nil, err
	}
	for _, t := range tmps {
		if err := fs.Remove(filepath.Join(d.dir, t)); err != nil {
			return nil, nil, err
		}
	}

	ix, info, err := recoverState(fs, d.dir)
	if err != nil {
		return nil, nil, err
	}
	if info.recovered {
		d.lastLSN, d.snapLSN = info.lastLSN, info.snapLSN
		d.recoveries.Store(1)
		d.replayed.Store(info.replayed)
		d.tornDrops.Store(info.tornDrops)
		d.fallbacks.Store(info.fallbacks)
	} else {
		// Fresh directory: persist the seed index as the initial snapshot
		// before serving, so the first crash already has something to
		// recover to.
		if seed == nil {
			return nil, nil, invalidArg(errors.New("wqrtq: data directory is empty and no seed index was provided"))
		}
		ix = seed
		if err := d.writeSnapshot(ix, 0); err != nil {
			return nil, nil, err
		}
	}

	// Always start a fresh segment at the recovered LSN: appending to an
	// existing file whose tail may be torn would corrupt it. The name can
	// collide with an existing segment only when that segment contributed
	// zero records past its base, so truncating it loses nothing.
	w, err := wal.Create(fs, d.dir, filepath.Join(d.dir, wal.SegmentName(d.lastLSN)), d.lastLSN, policy)
	if err != nil {
		return nil, nil, err
	}
	d.w = w

	if policy == wal.SyncInterval {
		d.wg.Add(1)
		go d.syncLoop()
	}
	return ix, d, nil
}

// syncLoop periodically syncs the current segment under the interval
// policy.
func (d *durable) syncLoop() {
	defer d.wg.Done()
	t := time.NewTicker(d.interval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			d.mu.Lock()
			w := d.w
			d.mu.Unlock()
			// Best effort: a failure poisons the writer, which the next
			// mutation reports to its caller.
			_ = w.Sync()
		}
	}
}

// appendInsert logs an effective insert and makes it as durable as the
// policy promises. Called under e.mu, before the mutated snapshot is
// published; an error aborts the mutation with the engine state unchanged.
func (d *durable) appendInsert(id uint64, p vec.Point) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	lsn := d.lastLSN + 1
	if err := d.w.AppendInsert(lsn, id, p); err != nil {
		return err
	}
	d.lastLSN = lsn
	return nil
}

// appendDelete logs an effective delete; see appendInsert.
func (d *durable) appendDelete(id uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	lsn := d.lastLSN + 1
	if err := d.w.AppendDelete(lsn, id); err != nil {
		return err
	}
	d.lastLSN = lsn
	return nil
}

// appendRetry runs one WAL append through the bounded retry ladder:
// attempt, and on failure — the writer is now poisoned — back off with
// jitter, replace the writer via recoverWriter, and attempt again, up to
// d.retries times. Exhausting the budget latches read-only degraded mode
// and returns the typed *DegradedError; queries are never affected.
// Called under e.mu with cur the published index the WAL position
// corresponds to (the failed mutation is not yet published). appendRetry
// itself takes no locks, so its backoff sleeps live outside every
// critical section the lockhold analyzer tracks.
func (d *durable) appendRetry(cur *Index, attempt func() error) error {
	if d.degraded.Load() {
		return d.degradedErr()
	}
	err := attempt()
	if err == nil {
		return nil
	}
	for i := 0; i < d.retries; i++ {
		d.walRetries.Add(1)
		sleepJittered(d.backoff << i)
		if rerr := d.recoverWriter(cur); rerr != nil {
			err = rerr
			continue
		}
		if err = attempt(); err == nil {
			return nil
		}
	}
	return d.enterDegraded("wal_append", err)
}

// sleepJittered sleeps d scaled by a uniform factor in [0.5, 1.5),
// desynchronizing concurrent retry ladders. A free-standing function that
// takes no locks, by design: backoff sleeps must never sit in a function
// body that also acquires an engine mutex.
func sleepJittered(d time.Duration) {
	time.Sleep(time.Duration(float64(d) * (0.5 + rand.Float64())))
}

// errCheckpointBusy: a concurrent checkpoint holds the serialization
// token; the retry ladder backs off and tries again.
var errCheckpointBusy = errors.New("wqrtq: checkpoint in progress")

// recoverWriter replaces a poisoned WAL writer by snapshot-then-rotate:
// serialize the current index at the exact LSN the log reached, then
// start a fresh segment at that LSN and swap it in. The order matters
// twice over. Appending to the poisoned segment is unsound — its tail
// may hold a partial frame, and a later valid record after undecodable
// bytes is exactly what recovery (correctly) refuses as mid-file
// corruption. And plain rotation without the snapshot is unsound too:
// it would leave the torn segment as a non-final link of the replay
// chain, which recovery also refuses. Writing the snapshot first drops
// the poisoned segment out of the chain entirely — recovery replays only
// segments at or above the snapshot's LSN.
func (d *durable) recoverWriter(cur *Index) error {
	if !d.checkpointing.CompareAndSwap(false, true) {
		return errCheckpointBusy
	}
	defer d.checkpointing.Store(false)
	d.mu.Lock()
	lsn := d.lastLSN
	prev := d.snapLSN
	d.mu.Unlock()
	if err := d.writeSnapshot(cur, lsn); err != nil {
		return err
	}
	w2, err := wal.Create(d.fs, d.dir, filepath.Join(d.dir, wal.SegmentName(lsn)), lsn, d.policy)
	if err != nil {
		return err
	}
	d.mu.Lock()
	old := d.w
	d.w = w2
	a, s := old.Counters()
	d.appendsBase += a
	d.syncsBase += s
	if lsn > d.snapLSN {
		d.snapLSN = lsn
	}
	d.mu.Unlock()
	_ = old.Close() // poisoned: best-effort release of the file handle
	d.wRecoveries.Add(1)
	d.cleanup(lsn, prev)
	return nil
}

// degradedErr returns the typed read-only error while degraded, nil
// otherwise.
func (d *durable) degradedErr() error {
	if !d.degraded.Load() {
		return nil
	}
	d.mu.Lock()
	reason, cause := d.degReason, d.degCause
	d.mu.Unlock()
	return &DegradedError{Reason: reason, Cause: cause}
}

// degradedReason returns the current degradation reason ("" when healthy).
func (d *durable) degradedReason() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.degReason
}

// enterDegraded latches read-only mode. The transition happens exactly
// once per degradation (under d.mu), no matter how many callers race
// into it; every caller gets the typed error.
func (d *durable) enterDegraded(reason string, cause error) error {
	d.mu.Lock()
	if !d.degraded.Load() {
		d.degReason, d.degCause = reason, cause
		d.degraded.Store(true)
		d.degradations.Add(1)
	}
	reason, cause = d.degReason, d.degCause
	d.mu.Unlock()
	return &DegradedError{Reason: reason, Cause: cause}
}

// clearDegraded lifts read-only mode after a successful Reopen.
func (d *durable) clearDegraded() {
	d.mu.Lock()
	d.degReason, d.degCause = "", nil
	d.degraded.Store(false)
	d.mu.Unlock()
}

// Reopen attempts to leave read-only degraded mode: under the mutation
// lock it re-runs the writer recovery (snapshot-then-rotate) against the
// current snapshot and, on success, clears the degraded latch so
// mutations flow again. On error the engine stays degraded; callers
// retry — typically after the operator fixed the device or freed space.
// On a healthy engine Reopen is a no-op.
func (e *Engine) Reopen() error {
	if e.closed.Load() {
		return ErrEngineClosed
	}
	d := e.dur
	if d == nil {
		return errors.New("wqrtq: engine has no data directory")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed.Load() {
		return ErrEngineClosed
	}
	if !d.degraded.Load() {
		return nil
	}
	if err := d.recoverWriter(e.current.Load()); err != nil {
		return err
	}
	d.ckptFailStreak.Store(0)
	d.clearDegraded()
	return nil
}

// stopped is the abort poll handed to the snapshot serializer so shutdown
// does not wait out a large checkpoint.
func (d *durable) stopped() bool {
	select {
	case <-d.stop:
		return true
	default:
		return false
	}
}

// writeSnapshot serializes ix as snap-<lsn>: write to a temp file, sync,
// rename into place, sync the directory. Readers only ever see complete,
// checksummed snapshots.
func (d *durable) writeSnapshot(ix *Index, lsn uint64) error {
	final := filepath.Join(d.dir, pagestore.SnapshotName(lsn))
	tmp := final + ".tmp"
	f, err := d.fs.Create(tmp)
	if err != nil {
		return err
	}
	if err := pagestore.Write(f, ix.tree, ix.points, lsn, d.stopped); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := d.fs.Rename(tmp, final); err != nil {
		return err
	}
	return d.fs.SyncDir(d.dir)
}

// maybeCheckpoint starts a background checkpoint when the current segment
// has outgrown the threshold. Called at the end of a mutation, under e.mu;
// the size probe and CAS are cheap and the work runs in a goroutine.
func (e *Engine) maybeCheckpoint() {
	d := e.dur
	if d.threshold < 0 || d.w.Bytes() < d.threshold {
		return
	}
	if !d.checkpointing.CompareAndSwap(false, true) {
		return
	}
	if !d.begin() {
		// Close has started; it owns the writer from here.
		d.checkpointing.Store(false)
		return
	}
	go func() {
		defer d.wg.Done()
		defer d.checkpointing.Store(false)
		d.noteCheckpoint(e.runCheckpoint())
	}()
}

// begin registers background work with the close barrier, refusing once
// close has started. This closes the wg.Add-vs-Wait race: without the
// closing check a mutation could start a checkpoint goroutine after
// close() had already begun waiting out the group, and the goroutine
// would then race the writer teardown.
func (d *durable) begin() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closing {
		return false
	}
	d.wg.Add(1)
	return true
}

// noteCheckpoint records a checkpoint outcome and drives the persistent-
// failure ladder: checkpointDegradeStreak consecutive failures degrade
// the engine to read-only, any success (or a shutdown abort) heals the
// streak. One failed checkpoint proves nothing about the device — it is
// simply retried at the next threshold crossing.
func (d *durable) noteCheckpoint(err error) {
	if err == nil || errors.Is(err, pagestore.ErrAborted) {
		d.ckptFailStreak.Store(0)
		return
	}
	d.checkpointFails.Add(1)
	if d.ckptFailStreak.Add(1) >= checkpointDegradeStreak {
		_ = d.enterDegraded("checkpoint_io", err)
	}
}

// Checkpoint synchronously serializes the current snapshot and truncates
// the WAL. It is the explicit form of what the background checkpointer
// does at the size threshold; tests and operators use it to bound recovery
// replay on demand. A concurrent checkpoint makes this call a no-op.
func (e *Engine) Checkpoint() error {
	if e.closed.Load() {
		return ErrEngineClosed
	}
	d := e.dur
	if d == nil {
		return errors.New("wqrtq: engine has no data directory")
	}
	if !d.checkpointing.CompareAndSwap(false, true) {
		return nil
	}
	defer d.checkpointing.Store(false)
	err := e.runCheckpoint()
	d.noteCheckpoint(err)
	return err
}

// runCheckpoint performs one checkpoint cycle: under e.mu it captures the
// current (snapshot, LSN) pair and rotates the WAL, then — lock-free,
// because the captured snapshot is immutable — serializes it, publishes
// the snapshot file, and drops superseded generations.
func (e *Engine) runCheckpoint() error {
	d := e.dur
	e.mu.Lock()
	snap := e.current.Load()
	d.mu.Lock()
	if d.closing {
		d.mu.Unlock()
		e.mu.Unlock()
		return pagestore.ErrAborted
	}
	lsn := d.lastLSN
	if lsn == d.snapLSN {
		d.mu.Unlock()
		e.mu.Unlock()
		return nil // nothing new since the last checkpoint
	}
	w2, err := wal.Create(d.fs, d.dir, filepath.Join(d.dir, wal.SegmentName(lsn)), lsn, d.policy)
	if err != nil {
		d.mu.Unlock()
		e.mu.Unlock()
		return err
	}
	old := d.w
	d.w = w2
	// Seal the rotated segment (sync + close) so from here on only the
	// newest segment can ever be torn. Under fsync=always every record in
	// it is already durable; under interval/off a failure here falls
	// within those policies' loss contract, and the snapshot about to be
	// written covers the segment either way.
	sealErr := old.Close()
	a, s := old.Counters()
	d.appendsBase += a
	d.syncsBase += s
	d.mu.Unlock()
	e.mu.Unlock()
	if sealErr != nil && d.policy == wal.SyncAlways {
		// With per-append syncs the final sync is a no-op repeat; a
		// failure means the device is rejecting syncs outright.
		return sealErr
	}

	if err := d.writeSnapshot(snap, lsn); err != nil {
		return err
	}
	d.mu.Lock()
	prev := d.snapLSN
	// Forward-only: a writer recovery may have already published a newer
	// snapshot while this checkpoint serialized an older capture.
	if lsn > d.snapLSN {
		d.snapLSN = lsn
	}
	d.mu.Unlock()
	d.checkpoints.Add(1)
	d.cleanup(lsn, prev)
	return nil
}

// cleanup drops snapshots older than the previous generation and WAL
// segments below it. Failures are ignored: leftover garbage is harmless
// (recovery skips past it) and the next checkpoint retries.
func (d *durable) cleanup(cur, prev uint64) {
	snaps, wals, _, err := scanDataDir(d.fs, d.dir)
	if err != nil {
		return
	}
	removed := false
	for _, lsn := range snaps {
		if lsn != cur && lsn != prev {
			if d.fs.Remove(filepath.Join(d.dir, pagestore.SnapshotName(lsn))) == nil {
				removed = true
			}
		}
	}
	for _, base := range wals {
		if base < prev {
			if d.fs.Remove(filepath.Join(d.dir, wal.SegmentName(base))) == nil {
				removed = true
			}
		}
	}
	if removed {
		_ = d.fs.SyncDir(d.dir)
	}
}

// close flushes and seals the WAL and waits out (or aborts, via the stop
// channel the serializer polls) an in-flight checkpoint. Idempotent.
func (d *durable) close() error {
	d.closeOnce.Do(func() {
		d.mu.Lock()
		d.closing = true
		d.mu.Unlock()
		close(d.stop)
		d.wg.Wait()
		d.mu.Lock()
		d.closeErr = d.w.Close()
		d.mu.Unlock()
	})
	return d.closeErr
}

func (d *durable) stats() WALStats {
	d.mu.Lock()
	w := d.w
	last, snapLSN := d.lastLSN, d.snapLSN
	aBase, sBase := d.appendsBase, d.syncsBase
	reason := d.degReason
	d.mu.Unlock()
	a, s := w.Counters()
	return WALStats{
		Enabled:            true,
		Fsync:              d.policyStr,
		LastLSN:            last,
		SnapshotLSN:        snapLSN,
		WALBytes:           w.Bytes(),
		Appends:            aBase + a,
		Syncs:              sBase + s,
		Checkpoints:        d.checkpoints.Load(),
		CheckpointFailures: d.checkpointFails.Load(),
		Recoveries:         d.recoveries.Load(),
		ReplayedRecords:    d.replayed.Load(),
		TornTailDrops:      d.tornDrops.Load(),
		SnapshotFallbacks:  d.fallbacks.Load(),
		Degraded:           d.degraded.Load(),
		DegradedReason:     reason,
		Degradations:       d.degradations.Load(),
		Retries:            d.walRetries.Load(),
		WriterRecoveries:   d.wRecoveries.Load(),
	}
}

// VerifyFile is one file's status in a VerifyReport.
type VerifyFile struct {
	Name string `json:"name"`
	// LSN is the snapshot's covered LSN or the segment's base LSN.
	LSN uint64 `json:"lsn"`
	// Err is empty when the file verifies.
	Err string `json:"err,omitempty"`
}

// VerifyReport is the result of VerifyDataDir — the offline checker behind
// `wqrtq verify <dir>`.
type VerifyReport struct {
	Snapshots []VerifyFile `json:"snapshots"`
	Segments  []VerifyFile `json:"segments"`
	// OK reports whether a recovery from this directory would succeed;
	// Detail carries the failure when it would not. Individual snapshot
	// files may fail (Err set) while OK stays true — that is exactly the
	// fallback path recovery takes.
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
	// Recovered state, valid when OK: the last durable LSN, live points
	// and allocated ids.
	LastLSN uint64 `json:"last_lsn"`
	Live    int    `json:"live"`
	NumIDs  int    `json:"num_ids"`
}

// VerifyDataDir checks a data directory offline: every snapshot's
// checksums, the WAL chain, and a full dry-run recovery including the
// recovered index's structural invariants. fs nil means the real
// filesystem. The returned error reports only I/O-level failures;
// verification findings land in the report.
func VerifyDataDir(fs storage.FS, dir string) (*VerifyReport, error) {
	if fs == nil {
		fs = storage.OS()
	}
	snaps, wals, _, err := scanDataDir(fs, dir)
	if err != nil {
		return nil, err
	}
	r := &VerifyReport{}
	for _, lsn := range snaps {
		vf := VerifyFile{Name: pagestore.SnapshotName(lsn), LSN: lsn}
		if _, err := readSnapshotFile(fs, dir, lsn); err != nil {
			vf.Err = err.Error()
		}
		r.Snapshots = append(r.Snapshots, vf)
	}
	for _, base := range wals {
		r.Segments = append(r.Segments, VerifyFile{Name: wal.SegmentName(base), LSN: base})
	}
	ix, info, err := recoverState(fs, dir)
	if err != nil {
		r.Detail = err.Error()
		return r, nil
	}
	if ix == nil {
		r.OK = true
		r.Detail = "empty data directory"
		return r, nil
	}
	if err := ix.CheckInvariants(); err != nil {
		r.Detail = fmt.Sprintf("recovered index fails invariants: %v", err)
		return r, nil
	}
	r.OK = true
	r.LastLSN = info.lastLSN
	r.Live = ix.Len()
	r.NumIDs = ix.NumIDs()
	return r, nil
}
