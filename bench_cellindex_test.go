package wqrtq

// BenchmarkCellIndex measures the materialized reverse-top-k cell index on
// the hot endpoints, cellindex on vs off (the -cellindex=off ablation;
// skyband and kernel on in both arms), at the BENCH_shard.json
// configuration (d = 3, k = 10, |W| = 200, |Wm| = 20, |S| = 16) for n in
// {20k, 100k}. TestRecordBenchCellIndex re-runs the n = 20k cells through
// testing.Benchmark and writes BENCH_cellindex.json with the run
// environment recorded from the process itself:
//
//	RECORD_BENCH=1 go test -run TestRecordBenchCellIndex .
//
// The cross-release trajectory at this configuration is
// BENCH_shard.json → BENCH_skyband.json → BENCH_kernel.json →
// BENCH_cellindex.json (see README).

import (
	"fmt"
	"os"
	"testing"
)

func newCellIndexBenchEnv(tb testing.TB, n int, cellOn bool) *skybandBenchEnv {
	tb.Helper()
	env := newKernelBenchEnv(tb, n, true)
	env.ix.SetCellIndex(cellOn)
	return env
}

func BenchmarkCellIndex(b *testing.B) {
	for _, n := range []int{20000, 100000} {
		for _, mode := range []string{"on", "off"} {
			env := newCellIndexBenchEnv(b, n, mode == "on")
			for _, ep := range skybandBenchEndpoints {
				b.Run(fmt.Sprintf("n=%d/cellindex=%s/%s", n, mode, ep), func(b *testing.B) {
					env.run(b, ep)
				})
			}
		}
	}
}

// TestRecordBenchCellIndex regenerates BENCH_cellindex.json. It is skipped
// unless RECORD_BENCH is set, keeping the recording mechanism compiled and
// in lockstep with the benchmark code it snapshots.
func TestRecordBenchCellIndex(t *testing.T) {
	if os.Getenv("RECORD_BENCH") == "" {
		t.Skip("set RECORD_BENCH=1 to re-record BENCH_cellindex.json")
	}
	const n = 20000
	snap := newBenchSnapshot("BenchmarkCellIndex",
		"Recorded by `RECORD_BENCH=1 go test -run TestRecordBenchCellIndex .` — the environment "+
			"fields above come from the recording process itself. cellindex=off preserves the "+
			"banded blocked-kernel execution paths (the -cellindex=off ablation) with the skyband "+
			"and kernel sub-indexes on in both arms; results are bit-identical either way "+
			"(TestCellIndexDifferential, TestCellIndexWhyNotPenalties, FuzzCellIndex). Compare the "+
			"cellindex=on rows against BENCH_kernel.json's kernel=on rows (same dataset "+
			"configuration) for the cross-release trajectory BENCH_shard → BENCH_skyband → "+
			"BENCH_kernel → BENCH_cellindex.", n)
	for _, mode := range []string{"on", "off"} {
		env := newCellIndexBenchEnv(t, n, mode == "on")
		// Warm the epoch caches so the recorded steady-state numbers do
		// not fold one-time grid construction into the first iteration.
		if _, err := env.ix.ReverseTopK(env.W, env.q, benchK); err != nil {
			t.Fatal(err)
		}
		for _, ep := range skybandBenchEndpoints {
			res := testing.Benchmark(func(b *testing.B) { env.run(b, ep) })
			ns := float64(res.T.Nanoseconds()) / float64(res.N)
			snap.Results = append(snap.Results, benchRecord{
				N: n, Skyband: "on", Kernel: "on", CellIndex: mode, Endpoint: ep,
				Iterations: res.N, NsPerOp: ns, ReqPerSec: 1e9 / ns,
			})
		}
	}
	writeBenchSnapshot(t, "BENCH_cellindex.json", snap)
}
