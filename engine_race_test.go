package wqrtq

// The snapshot-isolation hammer: one engine takes concurrent Insert/Delete
// traffic and query traffic at the same time, and every query is
// differentially checked against a brute-force oracle over the very
// snapshot it ran on. Any torn read — a query observing a half-applied
// mutation — shows up as an oracle mismatch, a structural-invariant
// violation, or a race-detector report under `go test -race`.

import (
	"math/rand"
	"sync"
	"testing"

	"wqrtq/internal/dataset"
	"wqrtq/internal/sample"
	"wqrtq/internal/vec"
)

// bruteTopK computes the top-k over a snapshot's live points by linear scan.
func bruteTopK(snap *Index, w []float64, k int) []Ranked {
	var out []Ranked
	for id := 0; id < snap.NumIDs(); id++ {
		p := snap.Point(id)
		if p == nil {
			continue
		}
		s := vec.Score(vec.Weight(w), vec.Point(p))
		pos := len(out)
		for pos > 0 && out[pos-1].Score > s {
			pos--
		}
		if len(out) < k {
			out = append(out, Ranked{})
		} else if pos == len(out) {
			continue
		}
		copy(out[pos+1:], out[pos:len(out)-1])
		out[pos] = Ranked{ID: id, Point: p, Score: s}
	}
	return out
}

func TestEngineConcurrentSnapshotIsolation(t *testing.T) {
	engineHammer(t, EngineConfig{Workers: 2, MaxBatch: 8, CacheSize: 256})
}

// TestEngineConcurrentSnapshotIsolationSharded is the same hammer over a
// spatially sharded engine: scatter-gather queries race shard-routed
// mutations, so any torn read of a shard tree, the ownership table, or the
// merged gather shows up as an oracle mismatch or a race report.
func TestEngineConcurrentSnapshotIsolationSharded(t *testing.T) {
	engineHammer(t, EngineConfig{Workers: 2, MaxBatch: 8, CacheSize: 256, Shards: 3})
}

func engineHammer(t *testing.T, cfg EngineConfig) {
	const (
		seedN    = 600
		dim      = 3
		inserts  = 900
		queryGo  = 4
		queriesN = 250
	)
	ds := dataset.Independent(seedN, dim, 21)
	pts := make([][]float64, len(ds.Points))
	for i, p := range ds.Points {
		pts[i] = p
	}
	ix, err := NewIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	// Universe of every point that can ever be live, keyed by id: seeds plus
	// the pre-generated insert pool (ids are allocated sequentially).
	pool := dataset.Independent(inserts, dim, 22)
	universe := make([]vec.Point, 0, seedN+inserts)
	universe = append(universe, ds.Points...)
	universe = append(universe, pool.Points...)

	e, err := NewEngine(ix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	var wg sync.WaitGroup

	// Mutator: interleave inserts from the pool with deletes of random ids.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(23))
		for i := 0; i < inserts; i++ {
			id, _, err := e.Insert(pool.Points[i])
			if err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
			if id != seedN+i {
				t.Errorf("insert %d allocated id %d, want %d", i, id, seedN+i)
				return
			}
			if i%2 == 0 {
				if _, _, err := e.Delete(rng.Intn(id + 1)); err != nil {
					t.Errorf("delete: %v", err)
					return
				}
			}
		}
	}()

	// Query goroutines: every iteration pins a snapshot, cross-checks the
	// indexed query against a brute-force scan of that same snapshot, and
	// also exercises the engine-level (batched, cached) path.
	for g := 0; g < queryGo; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + int64(g)))
			for i := 0; i < queriesN; i++ {
				snap := e.Snapshot()
				w := []float64(sample.RandSimplex(rng, dim))
				k := 1 + rng.Intn(12)

				got, err := snap.TopK(w, k)
				if err != nil {
					t.Errorf("snapshot TopK: %v", err)
					return
				}
				want := bruteTopK(snap, w, k)
				if len(got) != len(want) {
					t.Errorf("snapshot %d: TopK returned %d points, oracle %d",
						snap.Epoch(), len(got), len(want))
					return
				}
				for j := range got {
					if got[j].Score != want[j].Score {
						t.Errorf("snapshot %d: rank %d score %v, oracle %v",
							snap.Epoch(), j+1, got[j].Score, want[j].Score)
						return
					}
				}

				// Engine-level query: the result must be internally
				// consistent with *some* snapshot — every returned point is
				// from the known universe, the reported scores are exact,
				// and ranks ascend.
				res, _, err := e.TopK(w, k)
				if err != nil {
					t.Errorf("engine TopK: %v", err)
					return
				}
				prev := 0.0
				for j, r := range res {
					if r.ID < 0 || r.ID >= len(universe) {
						t.Errorf("engine TopK returned unknown id %d", r.ID)
						return
					}
					if !vec.Equal(vec.Point(r.Point), universe[r.ID]) {
						t.Errorf("engine TopK id %d has torn point %v, want %v",
							r.ID, r.Point, universe[r.ID])
						return
					}
					if s := vec.Score(vec.Weight(w), vec.Point(r.Point)); s != r.Score {
						t.Errorf("engine TopK id %d score %v, recomputed %v", r.ID, r.Score, s)
						return
					}
					if r.Score < prev {
						t.Errorf("engine TopK scores not ascending at rank %d", j+1)
						return
					}
					prev = r.Score
				}

				if i%10 == 0 {
					// Reverse top-k through the batched path against the
					// pinned snapshot's oracle is checked in engine_test.go;
					// here just assert it stays well-formed under churn.
					W := [][]float64{w, sample.RandSimplex(rng, dim)}
					q := []float64{rng.Float64() * 0.05, rng.Float64() * 0.05, rng.Float64() * 0.05}
					idxs, _, err := e.ReverseTopK(W, q, k)
					if err != nil {
						t.Errorf("engine ReverseTopK: %v", err)
						return
					}
					for _, ix := range idxs {
						if ix < 0 || ix >= len(W) {
							t.Errorf("ReverseTopK index %d out of range", ix)
							return
						}
					}
				}
			}
		}(g)
	}

	wg.Wait()
	if t.Failed() {
		return
	}
	final := e.Snapshot()
	if err := final.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if final.NumIDs() != seedN+inserts {
		t.Fatalf("final NumIDs = %d, want %d", final.NumIDs(), seedN+inserts)
	}
}
