package wqrtq

// The concurrent query-serving engine: copy-on-write snapshots let
// Insert/Delete proceed while TopK/ReverseTopK/Explain/WhyNot queries run
// from any number of goroutines, a bounded worker pool coalesces concurrent
// queries into batches (merging reverse top-k requests against the same
// query point into a single RTA run), and an LRU cache keyed by
// (snapshot epoch, query) serves repeated traffic without touching the
// index. The concurrency substrate (pool, cache, metrics) lives in
// internal/engine; this file binds it to the Index.

import (
	"encoding/binary"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"wqrtq/internal/core"
	"wqrtq/internal/engine"
	"wqrtq/internal/rtopk"
	"wqrtq/internal/topk"
	"wqrtq/internal/vec"
)

// ErrEngineClosed is returned by every Engine method called after Close.
var ErrEngineClosed = errors.New("wqrtq: engine is closed")

// EngineConfig tunes the serving engine. The zero value is a sensible
// latency-oriented default.
type EngineConfig struct {
	// Workers is the number of query worker goroutines; <= 0 uses
	// GOMAXPROCS.
	Workers int
	// MaxBatch caps how many concurrent requests one worker coalesces into
	// a batch; <= 0 uses 32.
	MaxBatch int
	// BatchLinger is how long a worker waits to fill its batch after the
	// first request arrives. Zero (the default) batches only requests
	// already queued — lowest latency; a sub-millisecond linger trades that
	// latency for substantially higher throughput under concurrent load,
	// because reverse top-k requests sharing a query point merge into one
	// index traversal.
	BatchLinger time.Duration
	// CacheSize is the capacity of the (epoch, query)-keyed LRU result
	// cache. 0 uses 4096; negative disables caching.
	CacheSize int
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	return c
}

// Engine serves queries and mutations over an Index with snapshot
// isolation. Queries always observe one consistent point set: the engine
// publishes an immutable snapshot, and every mutation clones the current
// snapshot (copy-on-write, so the clone is cheap), applies itself, and
// publishes the result. Mutations are serialized; queries never block them
// and are never blocked by them.
//
// Results returned by the engine (and by the snapshots it hands out) are
// shared — with the cache and with other callers — and must be treated as
// read-only.
type Engine struct {
	cfg     EngineConfig
	mu      sync.Mutex // serializes mutations
	current atomic.Pointer[Index]
	pool    *engine.Pool[*engineReq]
	cache   *engine.LRU[string, any] // nil when disabled
	metrics *engine.Metrics
	closed  atomic.Bool
}

// NewEngine wraps ix in a serving engine. The engine takes ownership of the
// index: the caller must not mutate ix afterwards (queries on it remain
// fine).
func NewEngine(ix *Index, cfg EngineConfig) (*Engine, error) {
	if ix == nil {
		return nil, errors.New("wqrtq: NewEngine requires an index")
	}
	cfg = cfg.withDefaults()
	e := &Engine{cfg: cfg, metrics: engine.NewMetrics()}
	e.current.Store(ix)
	if cfg.CacheSize > 0 {
		e.cache = engine.NewLRU[string, any](cfg.CacheSize)
	}
	e.pool = engine.NewPool(cfg.Workers, cfg.MaxBatch, cfg.BatchLinger, e.exec)
	return e, nil
}

// Close stops the engine: in-flight and already-queued requests finish,
// later calls fail with ErrEngineClosed. Close is idempotent.
func (e *Engine) Close() {
	e.closed.Store(true)
	e.pool.Close()
}

// Snapshot returns the currently published immutable snapshot. It is safe
// to query from any goroutine for as long as desired — later mutations
// publish new snapshots and never touch this one.
func (e *Engine) Snapshot() *Index { return e.current.Load() }

// Epoch returns the epoch of the current snapshot.
func (e *Engine) Epoch() uint64 { return e.current.Load().Epoch() }

// Insert adds a point through a copy-on-write snapshot swap and returns its
// id and the epoch of the snapshot that includes it.
func (e *Engine) Insert(p []float64) (int, uint64, error) {
	start := time.Now()
	id, epoch, err := e.insert(p)
	e.metrics.Observe("insert", time.Since(start), err != nil)
	return id, epoch, err
}

func (e *Engine) insert(p []float64) (int, uint64, error) {
	if e.closed.Load() {
		return 0, 0, ErrEngineClosed
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.current.Load()
	if err := cur.checkPoint(p); err != nil {
		return 0, cur.Epoch(), err
	}
	next := cur.Clone()
	id, err := next.Insert(p)
	if err != nil {
		return 0, cur.Epoch(), err
	}
	e.current.Store(next)
	return id, next.Epoch(), nil
}

// Delete removes the point with the given id through a copy-on-write
// snapshot swap. It reports whether the id was live, and the epoch of the
// snapshot without it.
func (e *Engine) Delete(id int) (bool, uint64, error) {
	start := time.Now()
	ok, epoch, err := e.delete(id)
	e.metrics.Observe("delete", time.Since(start), err != nil)
	return ok, epoch, err
}

func (e *Engine) delete(id int) (bool, uint64, error) {
	if e.closed.Load() {
		return false, 0, ErrEngineClosed
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.current.Load()
	if id < 0 || id >= cur.NumIDs() {
		ok, err := cur.Delete(id) // delegate for the canonical error
		return ok, cur.Epoch(), err
	}
	if cur.Point(id) == nil {
		return false, cur.Epoch(), nil // already deleted
	}
	next := cur.Clone()
	ok, err := next.Delete(id)
	if err != nil || !ok {
		return ok, cur.Epoch(), err
	}
	e.current.Store(next)
	return true, next.Epoch(), nil
}

// TopK serves Index.TopK from the current snapshot, batched and cached. The
// returned epoch identifies the snapshot that produced the result.
func (e *Engine) TopK(w []float64, k int) ([]Ranked, uint64, error) {
	if err := e.Snapshot().checkWeight(w); err != nil {
		return nil, 0, err
	}
	if k <= 0 {
		return nil, 0, errors.New("wqrtq: k must be positive")
	}
	v, epoch, err := e.do(&engineReq{kind: "topk", w: w, k: k})
	if err != nil {
		return nil, epoch, err
	}
	return v.([]Ranked), epoch, nil
}

// Rank serves Index.Rank from the current snapshot.
func (e *Engine) Rank(w, q []float64) (int, uint64, error) {
	snap := e.Snapshot()
	if err := snap.checkWeight(w); err != nil {
		return 0, 0, err
	}
	if err := snap.checkPoint(q); err != nil {
		return 0, 0, err
	}
	v, epoch, err := e.do(&engineReq{kind: "rank", w: w, q: q})
	if err != nil {
		return 0, epoch, err
	}
	return v.(int), epoch, nil
}

// ReverseTopK serves the bichromatic reverse top-k query from the current
// snapshot. Concurrent calls with the same q and k are merged into a single
// RTA evaluation over the union of their weighting-vector sets, amortizing
// the R-tree traversals across the whole batch.
func (e *Engine) ReverseTopK(W [][]float64, q []float64, k int) ([]int, uint64, error) {
	snap := e.Snapshot()
	if _, err := snap.checkWeights(W); err != nil {
		return nil, 0, err
	}
	if err := snap.checkPoint(q); err != nil {
		return nil, 0, err
	}
	if k <= 0 {
		return nil, 0, errors.New("wqrtq: k must be positive")
	}
	v, epoch, err := e.do(&engineReq{kind: "rtopk", W: W, q: q, k: k})
	if err != nil {
		return nil, epoch, err
	}
	return v.([]int), epoch, nil
}

// Explain serves Index.Explain from the current snapshot.
func (e *Engine) Explain(q []float64, Wm [][]float64) ([][]Ranked, uint64, error) {
	snap := e.Snapshot()
	if _, err := snap.checkWeights(Wm); err != nil {
		return nil, 0, err
	}
	if err := snap.checkPoint(q); err != nil {
		return nil, 0, err
	}
	v, epoch, err := e.do(&engineReq{kind: "explain", W: Wm, q: q})
	if err != nil {
		return nil, epoch, err
	}
	return v.([][]Ranked), epoch, nil
}

// WhyNot serves the full why-not pipeline from the current snapshot.
func (e *Engine) WhyNot(q []float64, k int, W [][]float64, opts Options) (*WhyNotAnswer, uint64, error) {
	snap := e.Snapshot()
	if _, err := snap.checkWeights(W); err != nil {
		return nil, 0, err
	}
	if err := snap.checkPoint(q); err != nil {
		return nil, 0, err
	}
	if k <= 0 {
		return nil, 0, errors.New("wqrtq: k must be positive")
	}
	v, epoch, err := e.do(&engineReq{kind: "whynot", W: W, q: q, k: k, opts: opts})
	if err != nil {
		return nil, epoch, err
	}
	return v.(*WhyNotAnswer), epoch, nil
}

// EngineStats is a point-in-time view of the engine's serving counters.
type EngineStats struct {
	// Epoch of the current snapshot.
	Epoch uint64 `json:"epoch"`
	// Live points and allocated ids in the current snapshot.
	Live   int `json:"live"`
	NumIDs int `json:"num_ids"`
	// Per-endpoint latency counters (topk, rank, rtopk, explain, whynot,
	// insert, delete).
	Endpoints map[string]engine.CounterSnapshot `json:"endpoints"`
	// Result cache counters; hits/misses count lookups.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	CacheLen    int   `json:"cache_len"`
}

// Stats returns the engine's serving counters.
func (e *Engine) Stats() EngineStats {
	snap := e.Snapshot()
	s := EngineStats{
		Epoch:     snap.Epoch(),
		Live:      snap.Len(),
		NumIDs:    snap.NumIDs(),
		Endpoints: e.metrics.Snapshot(),
	}
	if e.cache != nil {
		s.CacheHits, s.CacheMisses = e.cache.Stats()
		s.CacheLen = e.cache.Len()
	}
	return s
}

// engineReq is one queued query. key is the exact binary encoding of the
// arguments (without the epoch, which is prefixed at execution time).
type engineReq struct {
	kind string
	w, q []float64
	W    [][]float64
	k    int
	opts Options
	key  string
	done chan engineResp
}

type engineResp struct {
	val   any
	epoch uint64
	err   error
}

// do runs one request through the cache fast path and the worker pool.
func (e *Engine) do(r *engineReq) (any, uint64, error) {
	start := time.Now()
	r.key = argKey(r)
	if e.cache != nil {
		epoch := e.Epoch()
		if v, ok := e.cache.Get(epochKey(epoch, r.key)); ok {
			e.metrics.Observe(r.kind, time.Since(start), false)
			return v, epoch, nil
		}
	}
	r.done = make(chan engineResp, 1)
	if !e.pool.Submit(r) {
		return nil, 0, ErrEngineClosed
	}
	resp := <-r.done
	e.metrics.Observe(r.kind, time.Since(start), resp.err != nil)
	return resp.val, resp.epoch, resp.err
}

// exec serves one batch: it loads the snapshot once (the batch's
// linearization point), answers cache hits, deduplicates identical
// requests, merges reverse top-k requests that share (q, k) into one RTA
// run over the union of their weight sets, and fans results back out.
func (e *Engine) exec(batch []*engineReq) {
	snap := e.current.Load()
	epoch := snap.Epoch()

	waiters := make(map[string][]*engineReq, len(batch))
	var unique []*engineReq
	rtopkGroups := make(map[string][]*engineReq)
	for _, r := range batch {
		full := epochKey(epoch, r.key)
		if e.cache != nil {
			if v, ok := e.cache.Get(full); ok {
				r.done <- engineResp{val: v, epoch: epoch}
				continue
			}
		}
		if _, dup := waiters[full]; dup {
			waiters[full] = append(waiters[full], r)
			continue
		}
		waiters[full] = []*engineReq{r}
		if r.kind == "rtopk" {
			rtopkGroups[qkKey(r.q, r.k)] = append(rtopkGroups[qkKey(r.q, r.k)], r)
		} else {
			unique = append(unique, r)
		}
	}

	finish := func(r *engineReq, val any, err error) {
		full := epochKey(epoch, r.key)
		if err == nil && e.cache != nil {
			e.cache.Add(full, val)
		}
		for _, w := range waiters[full] {
			w.done <- engineResp{val: val, epoch: epoch, err: err}
		}
	}

	for _, grp := range rtopkGroups {
		e.execRTopK(snap, grp, finish)
	}
	// Arguments were validated at the Engine entry points (and dimensions
	// cannot change across snapshots), so the workers dispatch straight to
	// the internal implementations rather than re-validating through the
	// public Index methods.
	for _, r := range unique {
		var val any
		var err error
		switch r.kind {
		case "topk":
			val = toRanked(topk.TopK(snap.tree, vec.Weight(r.w), r.k))
		case "rank":
			val = topk.Rank(snap.tree, vec.Weight(r.w), vec.Score(vec.Weight(r.w), vec.Point(r.q)))
		case "explain":
			ex := core.Explain(snap.tree, vec.Point(r.q), toWeights(r.W))
			out := make([][]Ranked, len(ex))
			for i, x := range ex {
				out[i] = toRanked(x)
			}
			val = out
		case "whynot":
			// WhyNot runs the whole refinement pipeline; its re-validation
			// cost is negligible against the sampling and QP work.
			val, err = snap.WhyNot(r.q, r.k, r.W, r.opts)
		default:
			err = errors.New("wqrtq: unknown engine request kind " + r.kind)
		}
		finish(r, val, err)
	}
}

func toWeights(W [][]float64) []vec.Weight {
	ws := make([]vec.Weight, len(W))
	for i, w := range W {
		ws[i] = w
	}
	return ws
}

// execRTopK evaluates a group of reverse top-k requests sharing (q, k).
// Distinct weight sets are concatenated so RTA's threshold buffer prunes
// across the whole group; per-request results are recovered from the
// offsets.
func (e *Engine) execRTopK(snap *Index, grp []*engineReq, finish func(*engineReq, any, error)) {
	if len(grp) == 1 {
		r := grp[0]
		val, _ := rtopk.Bichromatic(snap.tree, toWeights(r.W), vec.Point(r.q), r.k)
		finish(r, val, nil)
		return
	}
	offsets := make([]int, len(grp)+1)
	total := 0
	for i, r := range grp {
		offsets[i] = total
		total += len(r.W)
	}
	offsets[len(grp)] = total
	merged := make([]vec.Weight, 0, total)
	for _, r := range grp {
		for _, w := range r.W {
			merged = append(merged, w)
		}
	}
	res, _ := rtopk.Bichromatic(snap.tree, merged, vec.Point(grp[0].q), grp[0].k)
	// res is sorted ascending; split it by offset range.
	pos := 0
	for i, r := range grp {
		lo, hi := offsets[i], offsets[i+1]
		for pos < len(res) && res[pos] < lo {
			pos++ // unreachable unless res unsorted; defensive
		}
		var part []int
		for pos < len(res) && res[pos] < hi {
			part = append(part, res[pos]-lo)
			pos++
		}
		finish(r, part, nil)
	}
}

// argKey encodes a request's kind and arguments exactly (no hashing, so no
// collisions): kind byte, k, then length-prefixed float vectors.
func argKey(r *engineReq) string {
	n := 16 + 8*len(r.w) + 8*len(r.q)
	for _, w := range r.W {
		n += 8 + 8*len(w)
	}
	b := make([]byte, 0, n+len(r.kind)+64)
	b = append(b, r.kind...)
	b = append(b, 0)
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(r.k)))
	b = appendVec(b, r.w)
	b = appendVec(b, r.q)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(r.W)))
	for _, w := range r.W {
		b = appendVec(b, w)
	}
	if r.kind == "whynot" {
		b = appendOptions(b, r.opts)
	}
	return string(b)
}

func appendVec(b []byte, v []float64) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(len(v)))
	for _, x := range v {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
	}
	return b
}

func appendOptions(b []byte, o Options) []byte {
	for _, f := range []float64{o.Penalty.Alpha, o.Penalty.Beta, o.Penalty.Gamma, o.Penalty.Lambda} {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
	}
	flags := uint64(0)
	if o.Penalty.NormalizeWeights {
		flags |= 1
	}
	if o.PerVector {
		flags |= 2
	}
	b = binary.LittleEndian.AppendUint64(b, flags)
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(o.SampleSize)))
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(o.QuerySampleSize)))
	b = binary.LittleEndian.AppendUint64(b, uint64(o.Seed))
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(o.Workers)))
	return b
}

func epochKey(epoch uint64, key string) string {
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], epoch)
	return string(p[:]) + key
}

func qkKey(q []float64, k int) string {
	b := make([]byte, 0, 16+8*len(q))
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(k)))
	b = appendVec(b, q)
	return string(b)
}
