package wqrtq

// The concurrent query-serving engine: copy-on-write snapshots let
// Insert/Delete proceed while TopK/ReverseTopK/Explain/WhyNot queries run
// from any number of goroutines, a bounded worker pool coalesces concurrent
// queries into batches (merging reverse top-k requests against the same
// query point into a single RTA run), and an LRU cache keyed by
// (snapshot epoch, query) serves repeated traffic without touching the
// index. The concurrency substrate (pool, cache, metrics) lives in
// internal/engine; this file binds it to the Index.

import (
	"context"
	"encoding/binary"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"wqrtq/internal/admission"
	"wqrtq/internal/engine"
	"wqrtq/internal/storage"
	"wqrtq/internal/topk"
	"wqrtq/internal/vec"
)

// ErrEngineClosed is returned by every Engine method called after Close.
var ErrEngineClosed = errors.New("wqrtq: engine is closed")

// EngineConfig tunes the serving engine. The zero value is a sensible
// latency-oriented default.
type EngineConfig struct {
	// Workers is the number of query worker goroutines; <= 0 uses
	// GOMAXPROCS.
	Workers int
	// MaxBatch caps how many concurrent requests one worker coalesces into
	// a batch; <= 0 uses 32.
	MaxBatch int
	// BatchLinger is how long a worker waits to fill its batch after the
	// first request arrives. Zero (the default) batches only requests
	// already queued — lowest latency; a sub-millisecond linger trades that
	// latency for substantially higher throughput under concurrent load,
	// because reverse top-k requests sharing a query point merge into one
	// index traversal.
	BatchLinger time.Duration
	// CacheSize is the capacity of the (epoch, query)-keyed LRU result
	// cache. 0 uses 4096; negative disables caching.
	CacheSize int
	// Shards > 1 partitions the dataset into that many spatial shards
	// (STR-order round-robin of leaf runs, see internal/shard) and executes
	// TopK, Rank, ReverseTopK (including the RTA stage of WhyNot) and
	// Explain by scatter-gather across them. Results are bit-identical to
	// unsharded execution; on multi-core hardware per-shard searches run
	// concurrently. <= 1 (the default) keeps the monolithic index.
	Shards int
	// DisableSkyband turns off the epoch-cached k-skyband sub-index (the
	// -skyband=off ablation): ReverseTopK, Rank, WhyNot and the refinement
	// endpoints then run the full-tree execution paths. Results are
	// identical either way; the sub-index only shrinks the candidate set
	// each evaluation traverses (see skyband.go and DESIGN.md §8).
	DisableSkyband bool
	// DisableKernel turns off the blocked SoA scoring kernel (the
	// -kernel=off ablation): the refinement sampling loops and eligible
	// reverse top-k evaluations then score one weighting vector at a time
	// instead of sweeping whole blocks over the flattened candidate set.
	// Results are bit-identical either way (see kernel.go and DESIGN.md
	// §9).
	DisableKernel bool
	// DisableCellIndex turns off the materialized reverse-top-k cell index
	// (the -cellindex=off ablation): eligible ReverseTopK evaluations (and
	// the RTA stage of WhyNot) then count against the whole flattened
	// k-skyband instead of a grid cell's precomputed candidate superset.
	// Results are bit-identical either way (see cellindex.go and DESIGN.md
	// §10). The index rides on the skyband and kernel sub-indexes, so
	// disabling either of those sidelines it too.
	DisableCellIndex bool
	// DataDir enables durability (durability.go): mutations are logged to
	// a write-ahead log before they are published, a background
	// checkpointer serializes snapshots, and NewEngine recovers the
	// persisted dataset — which then takes precedence over the index
	// argument. Empty (the default) keeps the engine pure in-memory,
	// byte-for-byte identical to its behavior before durability existed.
	DataDir string
	// Fsync selects the WAL durability policy: "always" (default; an
	// acknowledged mutation survives any crash), "interval" (background
	// sync every FsyncInterval; a crash may lose the last interval), or
	// "off" (sync only at rotation and Close).
	Fsync string
	// FsyncInterval is the period of the background sync under
	// Fsync="interval"; <= 0 uses 50ms.
	FsyncInterval time.Duration
	// CheckpointBytes triggers a background snapshot checkpoint (which
	// truncates the WAL) once the current segment exceeds it. 0 uses
	// DefaultCheckpointBytes; negative disables automatic checkpoints
	// (Engine.Checkpoint remains available).
	CheckpointBytes int64
	// FS overrides the filesystem the durability layer uses; nil (the
	// default) is the real one. Tests inject storage.FaultFS here to
	// simulate crashes, torn writes and bit rot.
	FS storage.FS
	// Admission enables the overload-control front door
	// (internal/admission): per-class token buckets, an AIMD concurrency
	// limiter steering accepted-request latency toward
	// AdmissionTargetLatency, and deadline-aware early shedding. A
	// rejected request fails with ErrOverloaded (an *OverloadError
	// carrying class, reason and a Retry-After hint) instead of queueing;
	// with admission on the engine never parks a caller behind a full
	// worker queue. Off by default, so the pure library behaves exactly
	// as before; `wqrtq serve` enables it (the -admission flag).
	Admission bool
	// AdmissionMaxInflight caps each class's adaptive concurrency window;
	// <= 0 uses 256.
	AdmissionMaxInflight int
	// AdmissionTargetLatency is the accepted-request latency the AIMD
	// controller steers toward; <= 0 uses 50ms.
	AdmissionTargetLatency time.Duration
	// AdmissionQueryRate and AdmissionMutationRate cap each class's
	// sustained admission rate in requests/second; <= 0 leaves the class
	// unmetered.
	AdmissionQueryRate    float64
	AdmissionMutationRate float64
	// WALRetries bounds how many times a failed WAL append is retried —
	// with jittered exponential backoff and a writer recovery
	// (snapshot-then-rotate) between attempts — before the engine
	// degrades to read-only (ErrDegraded on mutations, queries
	// unaffected). 0 uses 3; negative disables retries so the first
	// failure degrades.
	WALRetries int
	// WALRetryBackoff is the base backoff before the first WAL retry,
	// doubled per attempt with ±50% jitter; <= 0 uses 2ms.
	WALRetryBackoff time.Duration
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	return c
}

// Engine serves queries and mutations over an Index with snapshot
// isolation. Queries always observe one consistent point set: the engine
// publishes an immutable snapshot, and every mutation clones the current
// snapshot (copy-on-write, so the clone is cheap), applies itself, and
// publishes the result. Mutations are serialized; queries never block them
// and are never blocked by them.
//
// Results returned by the engine (and by the snapshots it hands out) are
// shared — with the cache and with other callers — and must be treated as
// read-only.
type Engine struct {
	cfg     EngineConfig
	mu      sync.Mutex // serializes mutations
	current atomic.Pointer[Index]
	pool    *engine.Pool[*engineReq]
	cache   *engine.LRU[cacheKey, any] // nil when disabled
	metrics *engine.Metrics
	closed  atomic.Bool
	// adm is the admission controller (overload.go, internal/admission);
	// nil when cfg.Admission is off.
	adm *admission.Controller
	// dur is the durability state (durability.go); nil without DataDir.
	dur       *durable
	closeOnce sync.Once
	closeErr  error
	// keepEpoch is the deposit guard for AddIf: allocated once so the
	// batch-execution finish path does not build a closure per result.
	keepEpoch func(cacheKey) bool
	// Per-endpoint RTA totals (rtopk and whynot), accumulated when a
	// computation actually runs — cache hits and merged co-waiters share
	// the producing run's statistics without re-counting them.
	rtaRtopk  rtaTotals
	rtaWhynot rtaTotals
}

// rtaTotals accumulates reverse top-k pruning statistics for one endpoint.
type rtaTotals struct {
	runs       atomic.Int64
	evaluated  atomic.Int64
	pruned     atomic.Int64
	candidates atomic.Int64
}

func (t *rtaTotals) add(s RTAStats) {
	t.runs.Add(1)
	t.evaluated.Add(int64(s.Evaluated))
	t.pruned.Add(int64(s.Pruned))
	t.candidates.Add(int64(s.CandidateSetSize))
}

// RTATotals is the cumulative RTA work of one endpoint, as surfaced in
// EngineStats and /v1/stats.
type RTATotals struct {
	// Runs counts the RTA evaluations actually executed (cache hits and
	// merged co-waiters do not add runs).
	Runs int64 `json:"runs"`
	// Evaluated and Pruned total the per-run vector counts.
	Evaluated int64 `json:"evaluated"`
	Pruned    int64 `json:"pruned"`
	// CandidatePoints totals the per-run candidate-set sizes; divided by
	// Runs it is the average number of points each top-k evaluation ran
	// against — the production-visible measure of the skyband win.
	CandidatePoints int64 `json:"candidate_points"`
}

func (t *rtaTotals) snapshot() RTATotals {
	return RTATotals{
		Runs:            t.runs.Load(),
		Evaluated:       t.evaluated.Load(),
		Pruned:          t.pruned.Load(),
		CandidatePoints: t.candidates.Load(),
	}
}

// NewEngine wraps ix in a serving engine. The engine takes ownership of the
// index: the caller must not mutate ix afterwards (queries on it remain
// fine). When cfg.Shards > 1 and the index is not already partitioned that
// way, the engine reshards it before serving starts.
//
// With cfg.DataDir set, durable state wins: when the directory already
// holds a dataset, ix serves only as a fallback seed and the recovered
// index is published instead; a fresh directory persists ix as the
// initial snapshot before serving starts.
func NewEngine(ix *Index, cfg EngineConfig) (*Engine, error) {
	// A nil index is allowed only when a data directory can supply the
	// dataset; openDurable rejects the combination of nil seed and empty
	// directory.
	if ix == nil && cfg.DataDir == "" {
		return nil, errors.New("wqrtq: NewEngine requires an index")
	}
	cfg = cfg.withDefaults()
	var dur *durable
	if cfg.DataDir != "" {
		rix, d, err := openDurable(ix, cfg)
		if err != nil {
			return nil, err
		}
		ix, dur = rix, d
	}
	if cfg.Shards > 1 && ix.Shards() != cfg.Shards {
		if err := ix.Reshard(cfg.Shards); err != nil {
			if dur != nil {
				dur.close()
			}
			return nil, err
		}
	}
	if ix.SkybandEnabled() == cfg.DisableSkyband {
		ix.SetSkyband(!cfg.DisableSkyband)
	}
	if ix.KernelEnabled() == cfg.DisableKernel {
		ix.SetKernel(!cfg.DisableKernel)
	}
	if ix.CellIndexEnabled() == cfg.DisableCellIndex {
		ix.SetCellIndex(!cfg.DisableCellIndex)
	}
	e := &Engine{cfg: cfg, metrics: engine.NewMetrics(), dur: dur}
	e.current.Store(ix)
	e.keepEpoch = func(k cacheKey) bool { return k.epoch == e.current.Load().Epoch() }
	if cfg.CacheSize > 0 {
		e.cache = engine.NewLRU[cacheKey, any](cfg.CacheSize)
	}
	if cfg.Admission {
		e.adm = admission.NewController(admission.Config{
			MaxInflight:   cfg.AdmissionMaxInflight,
			TargetLatency: cfg.AdmissionTargetLatency,
			QueryRate:     cfg.AdmissionQueryRate,
			MutationRate:  cfg.AdmissionMutationRate,
		})
	}
	e.pool = engine.NewPool(cfg.Workers, cfg.MaxBatch, cfg.BatchLinger, e.dropReq, e.exec)
	return e, nil
}

// Admission returns the engine's admission controller, nil when admission
// is disabled. Exposed for the chaos hooks (InjectLatency, InjectErrors)
// the load harness and degraded-mode tests drive.
func (e *Engine) Admission() *admission.Controller { return e.adm }

// dropReq sheds a queued request that is no longer worth running: one
// whose context ended while it waited (the waiter has already unblocked
// via its own ctx select and is answered with the context's error), and —
// with admission on — one whose remaining deadline budget has fallen
// below the query class's observed p50 service time. The second case is
// queued-but-doomed work the admission door could not catch, because the
// backlog grew after it was admitted; shedding it at dequeue is the last
// moment it can still cost nothing.
func (e *Engine) dropReq(r *engineReq) bool {
	if r.ctx == nil {
		return false
	}
	if err := r.ctx.Err(); err != nil {
		r.done <- engineResp{err: err}
		return true
	}
	if e.adm != nil {
		if dl, ok := r.ctx.Deadline(); ok {
			if p50 := e.adm.P50(admission.Query); p50 > 0 && time.Until(dl) < p50 {
				r.done <- engineResp{err: &OverloadError{Class: "query", Reason: admission.ReasonDoomed, RetryAfter: p50}}
				return true
			}
		}
	}
	return false
}

// Close stops the engine: in-flight and already-queued requests finish,
// later calls — mutations included — fail with ErrEngineClosed. With a
// data directory, Close then settles durability: the WAL is flushed and
// fsynced regardless of policy (every mutation acknowledged before Close
// is durable once Close returns), and an in-flight background checkpoint
// is either completed or cleanly abandoned (its temp file is removed at
// the next startup; the sealed WAL still covers every mutation). Close is
// idempotent and every call returns the first close's error.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() {
		e.closed.Store(true)
		e.pool.Close()
		// Barrier: a mutation that passed its closed check before the
		// store above may still be inside e.mu appending to the WAL or
		// triggering a checkpoint. Taking the lock here waits it out, and
		// every later mutation re-checks closed under e.mu — so once the
		// barrier passes, nothing can start new durability work and
		// dur.close() releases the data directory race-free.
		e.mu.Lock()
		barrier := e.current.Load()
		e.mu.Unlock()
		_ = barrier
		if e.dur != nil {
			e.closeErr = e.dur.close()
		}
	})
	return e.closeErr
}

// Snapshot returns the currently published immutable snapshot. It is safe
// to query from any goroutine for as long as desired — later mutations
// publish new snapshots and never touch this one.
func (e *Engine) Snapshot() *Index { return e.current.Load() }

// Epoch returns the epoch of the current snapshot.
func (e *Engine) Epoch() uint64 { return e.current.Load().Epoch() }

// Insert adds a point through a copy-on-write snapshot swap and returns its
// id and the epoch of the snapshot that includes it.
func (e *Engine) Insert(p []float64) (int, uint64, error) {
	start := time.Now()
	id, epoch, err := e.insert(p)
	e.metrics.Observe("insert", time.Since(start), err != nil)
	return id, epoch, err
}

func (e *Engine) insert(p []float64) (int, uint64, error) {
	if e.closed.Load() {
		return 0, 0, ErrEngineClosed
	}
	// Fail fast outside the lock: a degraded (read-only) engine refuses
	// mutations before they cost a clone; admission meters the mutation
	// class before it costs a lock acquisition. Both are re-verified on
	// the authoritative path (appendRetry, the closed re-check below).
	if e.dur != nil {
		if derr := e.dur.degradedErr(); derr != nil {
			return 0, 0, derr
		}
	}
	ticket, err := e.admit(context.Background(), admission.Mutation)
	if err != nil {
		return 0, 0, err
	}
	if ticket != nil {
		start := time.Now()
		defer func() { ticket.Done(time.Since(start)) }()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed.Load() {
		// Close sets closed and then takes e.mu as a barrier; a mutation
		// that raced past the first check must not append after the WAL
		// has been sealed.
		return 0, 0, ErrEngineClosed
	}
	cur := e.current.Load()
	if err := cur.checkPoint(p); err != nil {
		return 0, cur.Epoch(), err
	}
	next := cur.Clone()
	id, err := next.Insert(p)
	if err != nil {
		return 0, cur.Epoch(), err
	}
	// Write-ahead: the mutation is logged (and, under fsync=always, made
	// durable) before the snapshot containing it becomes observable. On
	// failure the clone is discarded and the engine state is unchanged.
	if e.dur != nil {
		if err := e.dur.appendRetry(cur, func() error {
			return e.dur.appendInsert(uint64(id), vec.Point(p))
		}); err != nil {
			return 0, cur.Epoch(), err
		}
	}
	e.current.Store(next)
	e.sweepCache(next.Epoch())
	if e.dur != nil {
		e.maybeCheckpoint()
	}
	return id, next.Epoch(), nil
}

// Delete removes the point with the given id through a copy-on-write
// snapshot swap. It reports whether the id was live, and the epoch of the
// snapshot without it.
func (e *Engine) Delete(id int) (bool, uint64, error) {
	start := time.Now()
	ok, epoch, err := e.delete(id)
	e.metrics.Observe("delete", time.Since(start), err != nil)
	return ok, epoch, err
}

func (e *Engine) delete(id int) (bool, uint64, error) {
	if e.closed.Load() {
		return false, 0, ErrEngineClosed
	}
	if e.dur != nil {
		if derr := e.dur.degradedErr(); derr != nil {
			return false, 0, derr
		}
	}
	ticket, err := e.admit(context.Background(), admission.Mutation)
	if err != nil {
		return false, 0, err
	}
	if ticket != nil {
		start := time.Now()
		defer func() { ticket.Done(time.Since(start)) }()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed.Load() {
		return false, 0, ErrEngineClosed
	}
	cur := e.current.Load()
	if id < 0 || id >= cur.NumIDs() {
		ok, err := cur.Delete(id) // delegate for the canonical error
		return ok, cur.Epoch(), err
	}
	if cur.Point(id) == nil {
		return false, cur.Epoch(), nil // already deleted
	}
	next := cur.Clone()
	ok, err := next.Delete(id)
	if err != nil || !ok {
		return ok, cur.Epoch(), err
	}
	if e.dur != nil {
		if err := e.dur.appendRetry(cur, func() error {
			return e.dur.appendDelete(uint64(id))
		}); err != nil {
			return false, cur.Epoch(), err
		}
	}
	e.current.Store(next)
	e.sweepCache(next.Epoch())
	if e.dur != nil {
		e.maybeCheckpoint()
	}
	return true, next.Epoch(), nil
}

// sweepCache evicts every cache entry of a superseded epoch as soon as a
// mutation publishes a new one. Without the sweep, dead-epoch entries — no
// longer reachable by any lookup, since lookups always key on the current
// epoch — would linger until capacity pressure pushed them out, silently
// halving the effective cache under mutation-heavy load. Deposits cannot
// race past it: batch execution deposits through AddIf with an
// epoch-is-still-current guard evaluated under the cache lock, so a result
// computed against a superseded snapshot is dropped instead of stranding a
// dead-epoch entry until the next mutation.
func (e *Engine) sweepCache(current uint64) {
	if e.cache == nil {
		return
	}
	e.cache.EvictIf(func(k cacheKey) bool {
		return k.epoch != current
	})
}

// TopK serves Index.TopK from the current snapshot, batched and cached. It
// is a thin wrapper over TopKCtx with context.Background(). The returned
// epoch identifies the snapshot that produced the result.
func (e *Engine) TopK(w []float64, k int) ([]Ranked, uint64, error) {
	resp, err := e.TopKCtx(context.Background(), TopKRequest{W: w, K: k})
	return resp.Result, resp.Epoch, err
}

// TopKCtx serves a TopKRequest, batched and cached, with cooperative
// cancellation: a request whose context ends while queued is shed without
// index work, and one canceled mid-evaluation unwinds within one check
// interval. The response's Elapsed includes queueing and batching time.
func (e *Engine) TopKCtx(ctx context.Context, req TopKRequest) (TopKResponse, error) {
	start := time.Now()
	var resp TopKResponse
	if err := e.Snapshot().checkWeight(req.W); err != nil {
		return resp, err
	}
	if req.K <= 0 {
		return resp, errPositiveK
	}
	v, epoch, err := e.do(ctx, &engineReq{kind: "topk", w: req.W, k: req.K})
	resp.Epoch = epoch
	if err != nil {
		return resp, err
	}
	resp.Result = v.([]Ranked)
	resp.Elapsed = time.Since(start)
	return resp, nil
}

// Rank serves Index.Rank from the current snapshot. It is a thin wrapper
// over RankCtx with context.Background().
func (e *Engine) Rank(w, q []float64) (int, uint64, error) {
	resp, err := e.RankCtx(context.Background(), RankRequest{W: w, Q: q})
	return resp.Rank, resp.Epoch, err
}

// RankCtx serves a RankRequest with cooperative cancellation.
func (e *Engine) RankCtx(ctx context.Context, req RankRequest) (RankResponse, error) {
	start := time.Now()
	var resp RankResponse
	snap := e.Snapshot()
	if err := snap.checkWeight(req.W); err != nil {
		return resp, err
	}
	if err := snap.checkPoint(req.Q); err != nil {
		return resp, err
	}
	v, epoch, err := e.do(ctx, &engineReq{kind: "rank", w: req.W, q: req.Q})
	resp.Epoch = epoch
	if err != nil {
		return resp, err
	}
	resp.Rank = v.(int)
	resp.Elapsed = time.Since(start)
	return resp, nil
}

// ReverseTopK serves the bichromatic reverse top-k query from the current
// snapshot. Concurrent calls with the same q and k are merged into a single
// RTA evaluation over the union of their weighting-vector sets, amortizing
// the R-tree traversals across the whole batch. It is a thin wrapper over
// ReverseTopKCtx with context.Background().
func (e *Engine) ReverseTopK(W [][]float64, q []float64, k int) ([]int, uint64, error) {
	resp, err := e.ReverseTopKCtx(context.Background(), ReverseTopKRequest{Q: q, K: k, W: W})
	return resp.Result, resp.Epoch, err
}

// ReverseTopKCtx serves a ReverseTopKRequest with cooperative cancellation.
// A merged same-(q, k) RTA group is aborted only when every waiter's
// context is done: one canceled waiter unblocks immediately with its
// context's error while the shared evaluation keeps running for the rest.
func (e *Engine) ReverseTopKCtx(ctx context.Context, req ReverseTopKRequest) (ReverseTopKResponse, error) {
	start := time.Now()
	var resp ReverseTopKResponse
	snap := e.Snapshot()
	if _, err := snap.checkWeights(req.W); err != nil {
		return resp, err
	}
	if err := snap.checkPoint(req.Q); err != nil {
		return resp, err
	}
	if req.K <= 0 {
		return resp, errPositiveK
	}
	v, epoch, err := e.do(ctx, &engineReq{kind: "rtopk", W: req.W, q: req.Q, k: req.K})
	resp.Epoch = epoch
	if err != nil {
		return resp, err
	}
	rv := v.(rtopkVal)
	resp.Result = rv.res
	resp.RTA = rv.rta
	resp.Elapsed = time.Since(start)
	return resp, nil
}

// Explain serves Index.Explain from the current snapshot. It is a thin
// wrapper over ExplainCtx with context.Background().
func (e *Engine) Explain(q []float64, Wm [][]float64) ([][]Ranked, uint64, error) {
	resp, err := e.ExplainCtx(context.Background(), ExplainRequest{Q: q, Wm: Wm})
	return resp.Explanations, resp.Epoch, err
}

// ExplainCtx serves an ExplainRequest with cooperative cancellation.
func (e *Engine) ExplainCtx(ctx context.Context, req ExplainRequest) (ExplainResponse, error) {
	start := time.Now()
	var resp ExplainResponse
	snap := e.Snapshot()
	if _, err := snap.checkWeights(req.Wm); err != nil {
		return resp, err
	}
	if err := snap.checkPoint(req.Q); err != nil {
		return resp, err
	}
	v, epoch, err := e.do(ctx, &engineReq{kind: "explain", W: req.Wm, q: req.Q})
	resp.Epoch = epoch
	if err != nil {
		return resp, err
	}
	resp.Explanations = v.([][]Ranked)
	resp.Elapsed = time.Since(start)
	return resp, nil
}

// WhyNot serves the full why-not pipeline from the current snapshot. It is
// a thin wrapper over WhyNotCtx with context.Background().
func (e *Engine) WhyNot(q []float64, k int, W [][]float64, opts Options) (*WhyNotAnswer, uint64, error) {
	resp, err := e.WhyNotCtx(context.Background(), WhyNotRequest{Q: q, K: k, W: W, Opts: opts})
	return resp.Answer, resp.Epoch, err
}

// WhyNotCtx serves a WhyNotRequest with cooperative cancellation threaded
// through the whole refinement pipeline; deadline-bounding heavy why-not
// refinements is the primary use of the context API.
func (e *Engine) WhyNotCtx(ctx context.Context, req WhyNotRequest) (WhyNotResponse, error) {
	start := time.Now()
	var resp WhyNotResponse
	snap := e.Snapshot()
	if _, err := snap.checkWeights(req.W); err != nil {
		return resp, err
	}
	if err := snap.checkPoint(req.Q); err != nil {
		return resp, err
	}
	if req.K <= 0 {
		return resp, errPositiveK
	}
	v, epoch, err := e.do(ctx, &engineReq{kind: "whynot", W: req.W, q: req.Q, k: req.K, opts: req.Opts})
	resp.Epoch = epoch
	if err != nil {
		return resp, err
	}
	resp.Answer = v.(*WhyNotAnswer)
	resp.Elapsed = time.Since(start)
	return resp, nil
}

// ModifyQueryCtx serves a ModifyQueryRequest (MQP) through the engine:
// batched, cached under the snapshot epoch, and cancelable.
func (e *Engine) ModifyQueryCtx(ctx context.Context, req ModifyQueryRequest) (ModifyQueryResponse, error) {
	start := time.Now()
	var resp ModifyQueryResponse
	snap := e.Snapshot()
	if _, err := snap.checkWeights(req.Wm); err != nil {
		return resp, err
	}
	if err := snap.checkPoint(req.Q); err != nil {
		return resp, err
	}
	if req.K <= 0 {
		return resp, errPositiveK
	}
	v, epoch, err := e.do(ctx, &engineReq{kind: "modify_query", W: req.Wm, q: req.Q, k: req.K, opts: req.Opts})
	resp.Epoch = epoch
	if err != nil {
		return resp, err
	}
	resp.Refinement = v.(QueryRefinement)
	resp.Elapsed = time.Since(start)
	return resp, nil
}

// ModifyPreferencesCtx serves a ModifyPreferencesRequest (MWK) through the
// engine: batched, cached under the snapshot epoch, and cancelable.
func (e *Engine) ModifyPreferencesCtx(ctx context.Context, req ModifyPreferencesRequest) (ModifyPreferencesResponse, error) {
	start := time.Now()
	var resp ModifyPreferencesResponse
	snap := e.Snapshot()
	if _, err := snap.checkWeights(req.Wm); err != nil {
		return resp, err
	}
	if err := snap.checkPoint(req.Q); err != nil {
		return resp, err
	}
	if req.K <= 0 {
		return resp, errPositiveK
	}
	v, epoch, err := e.do(ctx, &engineReq{kind: "modify_preferences", W: req.Wm, q: req.Q, k: req.K, opts: req.Opts})
	resp.Epoch = epoch
	if err != nil {
		return resp, err
	}
	resp.Refinement = v.(PreferenceRefinement)
	resp.Elapsed = time.Since(start)
	return resp, nil
}

// ModifyAllCtx serves a ModifyAllRequest (MQWK) through the engine:
// batched, cached under the snapshot epoch, and cancelable.
func (e *Engine) ModifyAllCtx(ctx context.Context, req ModifyAllRequest) (ModifyAllResponse, error) {
	start := time.Now()
	var resp ModifyAllResponse
	snap := e.Snapshot()
	if _, err := snap.checkWeights(req.Wm); err != nil {
		return resp, err
	}
	if err := snap.checkPoint(req.Q); err != nil {
		return resp, err
	}
	if req.K <= 0 {
		return resp, errPositiveK
	}
	v, epoch, err := e.do(ctx, &engineReq{kind: "modify_all", W: req.Wm, q: req.Q, k: req.K, opts: req.Opts})
	resp.Epoch = epoch
	if err != nil {
		return resp, err
	}
	resp.Refinement = v.(FullRefinement)
	resp.Elapsed = time.Since(start)
	return resp, nil
}

// EngineStats is a point-in-time view of the engine's serving counters.
type EngineStats struct {
	// Epoch of the current snapshot.
	Epoch uint64 `json:"epoch"`
	// Live points and allocated ids in the current snapshot.
	Live   int `json:"live"`
	NumIDs int `json:"num_ids"`
	// Shards is the number of spatial partitions executing scatter-gather
	// queries; 1 means monolithic execution.
	Shards int `json:"shards"`
	// Per-endpoint latency counters (topk, rank, rtopk, explain, whynot,
	// modify_query, modify_preferences, modify_all, insert, delete).
	Endpoints map[string]engine.CounterSnapshot `json:"endpoints"`
	// Canceled totals, across endpoints, the requests that failed because
	// the caller's context was canceled or its deadline expired (each
	// endpoint's own count is in Endpoints).
	Canceled int64 `json:"canceled"`
	// Result cache counters; hits/misses count lookups. CacheEvictions
	// counts entries removed by capacity pressure and by the dead-epoch
	// sweep that runs when a mutation publishes a new snapshot.
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheLen       int   `json:"cache_len"`
	CacheEvictions int64 `json:"cache_evictions"`
	// Skyband describes the k-skyband sub-index: the bands cached on the
	// current snapshot and the cumulative build/hit/fallback counters.
	Skyband SkybandStats `json:"skyband"`
	// Kernel describes the blocked scoring kernel: whether it is enabled
	// and the cumulative blocked-sweep counters (blocks, weights ranked,
	// candidate points swept).
	Kernel KernelStats `json:"kernel"`
	// CellIndex describes the materialized reverse-top-k cell index: the
	// grids cached on the current snapshot and the cumulative
	// build/hit/lookup/fallback counters.
	CellIndex CellIndexStats `json:"cellindex"`
	// RTA aggregates reverse top-k pruning work per endpoint ("rtopk",
	// "whynot"), so the skyband candidate-set win is observable in
	// production, not just in benchmarks.
	RTA map[string]RTATotals `json:"rta"`
	// WAL reports the durability layer's counters (durability.go);
	// Enabled is false for a pure in-memory engine.
	WAL WALStats `json:"wal"`
	// Admission reports the overload-control counters per class ("query",
	// "mutation"); nil when admission is disabled.
	Admission map[string]admission.ClassStats `json:"admission,omitempty"`
}

// Stats returns the engine's serving counters.
func (e *Engine) Stats() EngineStats {
	snap := e.Snapshot()
	s := EngineStats{
		Epoch:     snap.Epoch(),
		Live:      snap.Len(),
		NumIDs:    snap.NumIDs(),
		Shards:    snap.Shards(),
		Endpoints: e.metrics.Snapshot(),
		Skyband:   snap.SkybandStats(),
		Kernel:    snap.KernelStats(),
		CellIndex: snap.CellIndexStats(),
		RTA: map[string]RTATotals{
			"rtopk":  e.rtaRtopk.snapshot(),
			"whynot": e.rtaWhynot.snapshot(),
		},
	}
	//wqrtq:unordered summing int counters; result is order-free
	for _, c := range s.Endpoints {
		s.Canceled += c.Canceled
	}
	if e.cache != nil {
		s.CacheHits, s.CacheMisses = e.cache.Stats()
		s.CacheLen = e.cache.Len()
		s.CacheEvictions = e.cache.Evictions()
	}
	if e.dur != nil {
		s.WAL = e.dur.stats()
	}
	if e.adm != nil {
		s.Admission = e.adm.Stats()
	}
	return s
}

// engineReq is one queued query. key is the exact binary encoding of the
// arguments (without the epoch, which is prefixed at execution time). ctx is
// the caller's context: the pool sheds the request if it ends while queued,
// and a running computation is canceled only when the contexts of all its
// waiters are done.
type engineReq struct {
	ctx  context.Context
	kind string
	w, q []float64
	W    [][]float64
	k    int
	opts Options
	key  string
	done chan engineResp
}

type engineResp struct {
	val   any
	epoch uint64
	err   error
}

// isCtxErr reports whether err is a context cancellation or deadline error.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// observe records one request's latency, error and cancellation counters.
func (e *Engine) observe(kind string, start time.Time, err error) {
	e.metrics.Observe(kind, time.Since(start), err != nil)
	if err != nil && isCtxErr(err) {
		e.metrics.ObserveCanceled(kind)
	}
}

// do runs one request through the cache fast path, the admission door and
// the worker pool. The caller unblocks as soon as ctx ends, even if the
// request is still queued (the pool then sheds it without work). With
// admission on, a request that cannot get a queue slot immediately is
// shed with ErrOverloaded instead of parking the caller behind a backlog.
func (e *Engine) do(ctx context.Context, r *engineReq) (any, uint64, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		e.observe(r.kind, start, err)
		return nil, 0, err
	}
	r.ctx = ctx
	r.key = argKey(r)
	if e.cache != nil {
		epoch := e.Epoch()
		if v, ok := e.cacheGet(epoch, r.key); ok {
			e.metrics.Observe(r.kind, time.Since(start), false)
			if e.adm != nil {
				// Cache hits bypass admission but still shape the class's
				// service-time estimate: under cache-heavy traffic the
				// median service time really is a cache hit.
				e.adm.Observe(admission.Query, time.Since(start))
			}
			return v, epoch, nil
		}
	}
	// The door: deadline-aware shedding, rate limiting and the AIMD
	// concurrency window — all before the request costs a queue slot.
	ticket, aerr := e.admit(ctx, admission.Query)
	if aerr != nil {
		e.observe(r.kind, start, aerr)
		return nil, 0, aerr
	}
	r.done = make(chan engineResp, 1)
	if ticket != nil {
		queued, open := e.pool.TrySubmit(r)
		if !open {
			ticket.Done(time.Since(start))
			return nil, 0, ErrEngineClosed
		}
		if !queued {
			ticket.Done(time.Since(start))
			err := &OverloadError{Class: "query", Reason: ReasonQueueFull, RetryAfter: e.adm.P50(admission.Query)}
			e.observe(r.kind, start, err)
			return nil, 0, err
		}
	} else {
		ok, err := e.pool.SubmitCtx(ctx, r)
		if err != nil {
			// The queue was full when the context ended; no work was queued.
			e.observe(r.kind, start, err)
			return nil, 0, err
		}
		if !ok {
			return nil, 0, ErrEngineClosed
		}
	}
	select {
	case resp := <-r.done:
		if ticket != nil {
			ticket.Done(time.Since(start))
		}
		e.observe(r.kind, start, resp.err)
		return resp.val, resp.epoch, resp.err
	case <-ctx.Done():
		// The queued request is shed by the pool's drop check or answered
		// into the buffered done channel; nothing leaks.
		if ticket != nil {
			ticket.Done(time.Since(start))
		}
		err := ctx.Err()
		e.observe(r.kind, start, err)
		return nil, 0, err
	}
}

// compCtx returns the context a deduplicated or merged computation runs
// under: canceled only once every waiter's context is done, so one canceled
// waiter never aborts co-waiters sharing the work. The returned stop must be
// called when the computation finishes to release the watcher goroutine.
func compCtx(reqs []*engineReq) (context.Context, context.CancelFunc) {
	if len(reqs) == 1 {
		// Sole waiter: its own context is exactly the right computation
		// context, with no watcher goroutine. This is the hot path — most
		// batch entries are not deduplicated or merged.
		if ctx := reqs[0].ctx; ctx != nil {
			return ctx, func() {}
		}
		return context.Background(), func() {}
	}
	for _, r := range reqs {
		if r.ctx == nil || r.ctx.Done() == nil {
			// At least one waiter can never cancel: the computation always
			// runs to completion and the watcher is unnecessary.
			return context.Background(), func() {}
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for _, r := range reqs {
			select {
			case <-r.ctx.Done():
			case <-ctx.Done():
				return
			}
		}
		cancel()
	}()
	return ctx, cancel
}

// exec serves one batch: it loads the snapshot once (the batch's
// linearization point), answers cache hits, sheds requests whose context
// already ended, deduplicates identical requests, merges reverse top-k
// requests that share (q, k) into one RTA run over the union of their
// weight sets, and fans results back out. Deduplicated and merged
// computations run under a context that cancels only when every waiter's
// context is done.
func (e *Engine) exec(batch []*engineReq) {
	snap := e.current.Load()
	epoch := snap.Epoch()

	waiters := make(map[cacheKey][]*engineReq, len(batch))
	var unique []*engineReq
	// rtopkOrder fixes the group execution order to first arrival within the
	// batch: ranging over rtopkGroups directly would run RTA merges (and
	// populate the cache) in a different order every batch.
	rtopkGroups := make(map[string][]*engineReq)
	var rtopkOrder []string
	for _, r := range batch {
		if r.ctx != nil {
			if err := r.ctx.Err(); err != nil {
				r.done <- engineResp{epoch: epoch, err: err}
				continue
			}
		}
		full := cacheKey{epoch: epoch, key: r.key}
		if e.cache != nil {
			if v, ok := e.cache.Get(full); ok {
				r.done <- engineResp{val: v, epoch: epoch}
				continue
			}
		}
		if _, dup := waiters[full]; dup {
			waiters[full] = append(waiters[full], r)
			continue
		}
		waiters[full] = []*engineReq{r}
		if r.kind == "rtopk" {
			gk := qkKey(r.q, r.k)
			if _, ok := rtopkGroups[gk]; !ok {
				rtopkOrder = append(rtopkOrder, gk)
			}
			rtopkGroups[gk] = append(rtopkGroups[gk], r)
		} else {
			unique = append(unique, r)
		}
	}

	finish := func(r *engineReq, val any, err error) {
		full := cacheKey{epoch: epoch, key: r.key}
		if err == nil && e.cache != nil {
			// Epoch-guarded deposit: if a mutation published a newer
			// snapshot while this result was computing, the sweep has
			// already run and depositing would strand a dead-epoch entry;
			// AddIf checks under the cache lock and drops it instead.
			e.cache.AddIf(full, val, e.keepEpoch)
		}
		for _, w := range waiters[full] {
			werr := err
			if err != nil && isCtxErr(err) && w.ctx != nil {
				// A shared computation only aborts once every waiter is
				// canceled; report each waiter's own context error.
				if own := w.ctx.Err(); own != nil {
					werr = own
				}
			}
			w.done <- engineResp{val: val, epoch: epoch, err: werr}
		}
	}

	for _, gk := range rtopkOrder {
		grp := rtopkGroups[gk]
		var ws []*engineReq
		for _, r := range grp {
			ws = append(ws, waiters[cacheKey{epoch: epoch, key: r.key}]...)
		}
		cctx, stop := compCtx(ws)
		e.execRTopK(cctx, snap, grp, finish)
		stop()
	}
	// Arguments were validated at the Engine entry points (and dimensions
	// cannot change across snapshots). The cheap kinds (topk, rank)
	// dispatch straight to the internal implementations to avoid paying
	// validation twice; the pipeline kinds (explain, whynot, modify_*) go
	// through the public Index Ctx methods, whose re-validation cost is
	// negligible against their sampling, QP and traversal work.
	for _, r := range unique {
		cctx, stop := compCtx(waiters[cacheKey{epoch: epoch, key: r.key}])
		var val any
		var err error
		switch r.kind {
		case "topk":
			var rs []topk.Result
			rs, err = snap.topkResults(cctx, vec.Weight(r.w), r.k)
			if err == nil {
				val = toRanked(rs)
			}
		case "rank":
			val, err = snap.rankResult(cctx, vec.Weight(r.w), vec.Score(vec.Weight(r.w), vec.Point(r.q)))
		case "explain":
			var resp ExplainResponse
			resp, err = snap.ExplainCtx(cctx, ExplainRequest{Q: r.q, Wm: r.W})
			if err == nil {
				val = resp.Explanations
			}
		case "whynot":
			// WhyNot runs the whole refinement pipeline; its re-validation
			// cost is negligible against the sampling and QP work.
			var resp WhyNotResponse
			resp, err = snap.WhyNotCtx(cctx, WhyNotRequest{Q: r.q, K: r.k, W: r.W, Opts: r.opts})
			if err == nil {
				val = resp.Answer
				e.rtaWhynot.add(resp.Answer.RTA)
			}
		case "modify_query":
			var resp ModifyQueryResponse
			resp, err = snap.ModifyQueryCtx(cctx, ModifyQueryRequest{Q: r.q, K: r.k, Wm: r.W, Opts: r.opts})
			if err == nil {
				val = resp.Refinement
			}
		case "modify_preferences":
			var resp ModifyPreferencesResponse
			resp, err = snap.ModifyPreferencesCtx(cctx, ModifyPreferencesRequest{Q: r.q, K: r.k, Wm: r.W, Opts: r.opts})
			if err == nil {
				val = resp.Refinement
			}
		case "modify_all":
			var resp ModifyAllResponse
			resp, err = snap.ModifyAllCtx(cctx, ModifyAllRequest{Q: r.q, K: r.k, Wm: r.W, Opts: r.opts})
			if err == nil {
				val = resp.Refinement
			}
		default:
			err = errors.New("wqrtq: unknown engine request kind " + r.kind)
		}
		stop()
		finish(r, val, err)
	}
}

func toWeights(W [][]float64) []vec.Weight {
	ws := make([]vec.Weight, len(W))
	for i, w := range W {
		ws[i] = w
	}
	return ws
}

// rtopkVal is the engine's cached reverse top-k result: the matching
// indices plus the pruning statistics of the run that produced them.
type rtopkVal struct {
	res []int
	rta RTAStats
}

// execRTopK evaluates a group of reverse top-k requests sharing (q, k)
// under ctx (which cancels only when every waiter is gone). The weight sets
// are merged with duplicates removed — weight vectors shared by co-waiters
// are evaluated once — so RTA's threshold buffer prunes across the whole
// group and no vector costs two top-k evaluations; per-request results fan
// back out through the slot map, each carrying the shared run's statistics.
func (e *Engine) execRTopK(ctx context.Context, snap *Index, grp []*engineReq, finish func(*engineReq, any, error)) {
	if len(grp) == 1 {
		r := grp[0]
		res, stats, err := snap.bichromatic(ctx, toWeights(r.W), vec.Point(r.q), r.k)
		if err != nil {
			finish(r, nil, err)
			return
		}
		rta := toRTAStats(stats)
		e.rtaRtopk.add(rta)
		finish(r, rtopkVal{res: res, rta: rta}, nil)
		return
	}
	merged, slots := mergeRTopKWeights(grp)
	res, stats, err := snap.bichromatic(ctx, merged, vec.Point(grp[0].q), grp[0].k)
	if err != nil {
		for _, r := range grp {
			finish(r, nil, err)
		}
		return
	}
	rta := toRTAStats(stats)
	e.rtaRtopk.add(rta)
	inResult := make([]bool, len(merged))
	for _, mi := range res {
		inResult[mi] = true
	}
	for gi, r := range grp {
		var part []int
		for j, mi := range slots[gi] {
			if inResult[mi] {
				part = append(part, j)
			}
		}
		finish(r, rtopkVal{res: part, rta: rta}, nil)
	}
}

// mergeRTopKWeights merges the weight sets of a same-(q, k) request group,
// deduplicating identical vectors: merged holds each distinct weight once,
// and slots[gi][j] is the merged index evaluating request gi's j-th vector.
func mergeRTopKWeights(grp []*engineReq) (merged []vec.Weight, slots [][]int) {
	total := 0
	for _, r := range grp {
		total += len(r.W)
	}
	merged = make([]vec.Weight, 0, total)
	slots = make([][]int, len(grp))
	seen := make(map[string]int, total)
	for gi, r := range grp {
		slots[gi] = make([]int, len(r.W))
		for j, w := range r.W {
			key := string(appendVec(nil, w))
			mi, ok := seen[key]
			if !ok {
				mi = len(merged)
				merged = append(merged, w)
				seen[key] = mi
			}
			slots[gi][j] = mi
		}
	}
	return merged, slots
}

// argKey encodes a request's kind and arguments exactly (no hashing, so no
// collisions): kind byte, k, then length-prefixed float vectors.
func argKey(r *engineReq) string {
	n := 16 + 8*len(r.w) + 8*len(r.q)
	for _, w := range r.W {
		n += 8 + 8*len(w)
	}
	b := make([]byte, 0, n+len(r.kind)+64)
	b = append(b, r.kind...)
	b = append(b, 0)
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(r.k)))
	b = appendVec(b, r.w)
	b = appendVec(b, r.q)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(r.W)))
	for _, w := range r.W {
		b = appendVec(b, w)
	}
	switch r.kind {
	case "whynot", "modify_query", "modify_preferences", "modify_all":
		b = appendOptions(b, r.opts)
	}
	return string(b)
}

func appendVec(b []byte, v []float64) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(len(v)))
	for _, x := range v {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
	}
	return b
}

func appendOptions(b []byte, o Options) []byte {
	for _, f := range []float64{o.Penalty.Alpha, o.Penalty.Beta, o.Penalty.Gamma, o.Penalty.Lambda} {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
	}
	flags := uint64(0)
	if o.Penalty.NormalizeWeights {
		flags |= 1
	}
	if o.PerVector {
		flags |= 2
	}
	b = binary.LittleEndian.AppendUint64(b, flags)
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(o.SampleSize)))
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(o.QuerySampleSize)))
	b = binary.LittleEndian.AppendUint64(b, uint64(o.Seed))
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(o.Workers)))
	return b
}

// cacheKey scopes one cached result to the snapshot epoch that produced
// it. It replaces the old epoch-prefixed string key, whose 8-byte-prefix
// concatenation allocated a fresh string on every lookup — including the
// hottest path of all, a cache hit; a two-field struct key hashes without
// allocating and lets sweepCache compare epochs instead of string prefixes.
type cacheKey struct {
	epoch uint64
	key   string
}

// cacheGet is the allocation-free cache hit path. Callers must have
// checked e.cache != nil.
//
//wqrtq:contract inline noalloc noescape(key)
func (e *Engine) cacheGet(epoch uint64, key string) (any, bool) {
	return e.cache.Get(cacheKey{epoch: epoch, key: key})
}

func qkKey(q []float64, k int) string {
	b := make([]byte, 0, 16+8*len(q))
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(k)))
	b = appendVec(b, q)
	return string(b)
}
