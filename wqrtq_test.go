package wqrtq

import (
	"math"
	"math/rand"
	"testing"

	"wqrtq/internal/dataset"
)

// The paper's running example (Figure 1).
var (
	paperData = [][]float64{
		{2, 1}, {6, 3}, {1, 9}, {9, 3}, {7, 5}, {5, 8}, {3, 7},
	}
	paperQ = []float64{4, 4}
	paperW = [][]float64{
		{0.9, 0.1}, // Julia
		{0.5, 0.5}, // Tony
		{0.3, 0.7}, // Anna
		{0.1, 0.9}, // Kevin
	}
)

func paperIndex(t *testing.T) *Index {
	t.Helper()
	ix, err := NewIndex(paperData)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestNewIndexValidation(t *testing.T) {
	if _, err := NewIndex(nil); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := NewIndex([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged dataset accepted")
	}
	if _, err := NewIndex([][]float64{{1, -2}}); err == nil {
		t.Error("negative attribute accepted")
	}
	ix := paperIndex(t)
	if ix.Len() != 7 || ix.Dim() != 2 {
		t.Errorf("index shape %d×%d", ix.Len(), ix.Dim())
	}
}

func TestTopKFacade(t *testing.T) {
	ix := paperIndex(t)
	got, err := ix.TopK([]float64{0.1, 0.9}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].ID != 0 || got[1].ID != 1 || got[2].ID != 3 {
		t.Errorf("TopK(kevin) = %v, want p1, p2, p4", got)
	}
	if _, err := ix.TopK([]float64{0.6, 0.6}, 3); err == nil {
		t.Error("invalid weight accepted")
	}
	if _, err := ix.TopK([]float64{0.5, 0.5}, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestReverseTopKFacade(t *testing.T) {
	ix := paperIndex(t)
	got, err := ix.ReverseTopK(paperW, paperQ, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("BRTOP3 = %v, want [1 2] (Tony, Anna)", got)
	}
}

func TestReverseTopKMono2DFacade(t *testing.T) {
	ix := paperIndex(t)
	ivs, err := ix.ReverseTopKMono2D(paperQ, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 1 || math.Abs(ivs[0].Lo-1.0/6) > 1e-9 || math.Abs(ivs[0].Hi-0.75) > 1e-9 {
		t.Errorf("MRTOP3 = %v, want [1/6, 3/4]", ivs)
	}
	// Dimension guard.
	ix3, err := NewIndex([][]float64{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix3.ReverseTopKMono2D([]float64{1, 1, 1}, 1); err == nil {
		t.Error("3-D monochromatic accepted")
	}
}

func TestRankFacade(t *testing.T) {
	ix := paperIndex(t)
	r, err := ix.Rank([]float64{0.1, 0.9}, paperQ)
	if err != nil {
		t.Fatal(err)
	}
	if r != 4 {
		t.Errorf("Rank = %d, want 4", r)
	}
}

func TestWhyNotFullPipeline(t *testing.T) {
	ix := paperIndex(t)
	ans, err := ix.WhyNot(paperQ, 3, paperW, Options{SampleSize: 800, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Missing) != 2 || ans.Missing[0] != 0 || ans.Missing[1] != 3 {
		t.Fatalf("Missing = %v, want [0 3] (Julia, Kevin)", ans.Missing)
	}
	// Explanations: at least k = 3 points responsible per missing vector.
	for i, ex := range ans.Explanations {
		if len(ex) < 3 {
			t.Errorf("explanation %d has %d points, want >= 3", i, len(ex))
		}
	}
	// All three refinements must verify.
	if ok, _ := ix.Verify(ans.ModifiedQuery.Q, 3, [][]float64{paperW[0], paperW[3]}); !ok {
		t.Error("ModifyQuery result fails verification")
	}
	if ok, _ := ix.Verify(paperQ, ans.ModifiedPreferences.K, ans.ModifiedPreferences.Wm); !ok {
		t.Error("ModifyPreferences result fails verification")
	}
	if ok, _ := ix.Verify(ans.ModifiedAll.Q, ans.ModifiedAll.K, ans.ModifiedAll.Wm); !ok {
		t.Error("ModifyAll result fails verification")
	}
	// Golden penalties for the running example (see internal/core tests):
	// MQP optimum 0.1289, MWK optimum 0.1161, MQWK <= λ·MWK.
	if math.Abs(ans.ModifiedQuery.Penalty-0.12886) > 1e-3 {
		t.Errorf("MQP penalty = %v, want 0.1289", ans.ModifiedQuery.Penalty)
	}
	if math.Abs(ans.ModifiedPreferences.Penalty-0.11607) > 1e-3 {
		t.Errorf("MWK penalty = %v, want 0.1161", ans.ModifiedPreferences.Penalty)
	}
	if ans.ModifiedAll.Penalty > 0.0581 {
		t.Errorf("MQWK penalty = %v, want <= 0.0581", ans.ModifiedAll.Penalty)
	}
	if ans.ModifiedPreferences.KMax != 4 {
		t.Errorf("KMax = %d, want 4", ans.ModifiedPreferences.KMax)
	}
}

func TestWhyNotNothingMissing(t *testing.T) {
	ix := paperIndex(t)
	ans, err := ix.WhyNot(paperQ, 3, [][]float64{{0.5, 0.5}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Missing) != 0 {
		t.Errorf("Missing = %v, want empty", ans.Missing)
	}
	if len(ans.Result) != 1 {
		t.Errorf("Result = %v, want [0]", ans.Result)
	}
}

func TestOptionsDefaultsAndValidation(t *testing.T) {
	ix := paperIndex(t)
	wm := [][]float64{{0.1, 0.9}}
	// Zero options resolve to paper defaults and work end to end.
	if _, err := ix.ModifyPreferences(paperQ, 3, wm, Options{}); err != nil {
		t.Errorf("zero options rejected: %v", err)
	}
	// Inconsistent penalty weights are rejected.
	bad := Options{Penalty: PenaltyModel{Alpha: 0.8, Beta: 0.8, Gamma: 0.5, Lambda: 0.5}}
	if _, err := ix.ModifyPreferences(paperQ, 3, wm, bad); err == nil {
		t.Error("alpha+beta != 1 accepted")
	}
	if _, err := ix.ModifyPreferences(paperQ, 3, wm, Options{SampleSize: -1}); err == nil {
		t.Error("negative sample size accepted")
	}
}

// Integration: a medium synthetic market where the full pipeline must hold
// its invariants end to end, through the public API only.
func TestIntegrationSyntheticMarket(t *testing.T) {
	ds := dataset.Independent(4000, 3, 77)
	pts := make([][]float64, len(ds.Points))
	for i, p := range ds.Points {
		pts[i] = p
	}
	ix, err := NewIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := dataset.MakeWhyNot(ds, 10, 101, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	W := make([][]float64, len(wl.Wm))
	for i, w := range wl.Wm {
		W[i] = w
	}
	ans, err := ix.WhyNot(wl.Q, wl.K, W, Options{SampleSize: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Missing) != 3 {
		t.Fatalf("Missing = %v, want all 3 vectors", ans.Missing)
	}
	if ok, _ := ix.Verify(ans.ModifiedQuery.Q, wl.K, W); !ok {
		t.Error("MQP refinement invalid")
	}
	if ok, _ := ix.Verify(wl.Q, ans.ModifiedPreferences.K, ans.ModifiedPreferences.Wm); !ok {
		t.Error("MWK refinement invalid")
	}
	if ok, _ := ix.Verify(ans.ModifiedAll.Q, ans.ModifiedAll.K, ans.ModifiedAll.Wm); !ok {
		t.Error("MQWK refinement invalid")
	}
	// Penalty ordering invariants.
	pm := ans.ModifiedAll.Penalty
	if pm > 0.5*ans.ModifiedQuery.Penalty+1e-9 {
		t.Errorf("MQWK %v > γ·MQP %v", pm, 0.5*ans.ModifiedQuery.Penalty)
	}
	for _, p := range []float64{ans.ModifiedQuery.Penalty, ans.ModifiedPreferences.Penalty, pm} {
		if p < 0 || p > 1 {
			t.Errorf("penalty %v outside [0, 1]", p)
		}
	}
}

func TestConcurrentReads(t *testing.T) {
	ix := paperIndex(t)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				lam := rng.Float64()
				if _, err := ix.TopK([]float64{lam, 1 - lam}, 3); err != nil {
					done <- err
					return
				}
				if _, err := ix.Rank([]float64{lam, 1 - lam}, paperQ); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
