package wqrtq

// Overload and degradation surfaces of the serving engine (see also
// internal/admission and durability.go):
//
//   - ErrOverloaded / OverloadError: the admission front door (or a full
//     worker queue) rejected the request before it cost index work. The
//     error carries the class, a machine-readable reason and a
//     Retry-After hint, which the HTTP layer maps to 503 + Retry-After.
//   - ErrDegraded / DegradedError: the durability layer hit persistent
//     I/O failures and the engine is serving read-only. Queries keep
//     answering from the immutable snapshot; mutations fail with this
//     error until Reopen succeeds.
//   - Health: the live/ready/degraded summary behind /v1/health,
//     suitable for load-balancer checks.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"wqrtq/internal/admission"
)

// ErrOverloaded is the sentinel matched by errors.Is for every admission
// rejection. The concrete error is always an *OverloadError.
var ErrOverloaded = errors.New("wqrtq: engine overloaded")

// ErrDegraded is the sentinel matched by errors.Is when the engine is in
// read-only degraded mode. The concrete error is always a *DegradedError.
var ErrDegraded = errors.New("wqrtq: engine degraded (read-only)")

// ReasonQueueFull is the OverloadError reason for a request that passed
// admission but found the worker queue full; the other reasons
// (admission.ReasonDoomed, ReasonRate, ReasonConcurrency, ReasonInjected)
// come from the admission controller.
const ReasonQueueFull = "queue_full"

// OverloadError reports a request shed by admission control. It matches
// ErrOverloaded under errors.Is.
type OverloadError struct {
	// Class is "query" or "mutation".
	Class string
	// Reason is machine-readable: doomed_deadline, rate_limit,
	// concurrency_limit, queue_full or fault_injected.
	Reason string
	// RetryAfter hints when a retry has a real chance (zero = no data).
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("wqrtq: %s shed (%s), retry after %v", e.Class, e.Reason, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// DegradedError reports a mutation refused because the engine is serving
// read-only. It matches ErrDegraded under errors.Is and unwraps to the
// I/O failure that caused the transition.
type DegradedError struct {
	// Reason is machine-readable: wal_append or checkpoint_io.
	Reason string
	// Cause is the underlying I/O error that exhausted the retry budget.
	Cause error
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("wqrtq: engine degraded (read-only): %s: %v", e.Reason, e.Cause)
}

// Is makes errors.Is(err, ErrDegraded) match.
func (e *DegradedError) Is(target error) bool { return target == ErrDegraded }

// Unwrap exposes the causal I/O error.
func (e *DegradedError) Unwrap() error { return e.Cause }

// Health is the engine's liveness summary, served at /v1/health.
type Health struct {
	// Live: the process is up and the engine object exists (false only
	// after Close).
	Live bool `json:"live"`
	// Ready: queries are servable. A degraded engine stays ready — that
	// is the point of read-only mode.
	Ready bool `json:"ready"`
	// Degraded: mutations are refused; Reason says why.
	Degraded bool   `json:"degraded"`
	Reason   string `json:"reason,omitempty"`
}

// Health reports the engine's current serving state.
func (e *Engine) Health() Health {
	h := Health{Live: !e.closed.Load()}
	h.Ready = h.Live
	if e.dur != nil && e.dur.degraded.Load() {
		h.Degraded = true
		h.Reason = e.dur.degradedReason()
	}
	return h
}

// admit maps an engine request through the admission controller,
// translating a shed decision into the public error type. A nil ticket
// with nil error means admission is disabled.
func (e *Engine) admit(ctx context.Context, class admission.Class) (*admission.Ticket, error) {
	if e.adm == nil {
		return nil, nil
	}
	t, shed := e.adm.Admit(ctx, class)
	if shed != nil {
		return nil, &OverloadError{Class: shed.Class.String(), Reason: shed.Reason, RetryAfter: shed.RetryAfter}
	}
	return t, nil
}
