package wqrtq

import (
	"context"
	"fmt"
	"sort"
	"time"

	"wqrtq/internal/cellindex"
	"wqrtq/internal/dominance"
	"wqrtq/internal/rtopk"
	"wqrtq/internal/skyband"
	"wqrtq/internal/vec"
)

// Insert adds a point to the index and returns its id (the position it
// would have had in the NewIndex input). The point slice is retained.
//
// Mutations are not safe concurrently with queries or other mutations on the
// same Index; queries from multiple goroutines remain safe between
// mutations. To mutate while queries are in flight, take a Clone and mutate
// that (or use Engine, which does exactly this).
func (ix *Index) Insert(p []float64) (int, error) {
	if err := ix.checkPoint(p); err != nil {
		return 0, err
	}
	ix.ownPoints()
	id := len(ix.points)
	ix.points = append(ix.points, vec.Point(p))
	ix.tree.Insert(p, int32(id))
	if ix.shards != nil {
		if err := ix.shards.Insert(p, id); err != nil {
			return 0, err
		}
	}
	ix.resetSkyband()
	ix.resetCellIndex()
	return id, nil
}

// Delete removes the point with the given id (as returned by NewIndex
// ordering or Insert). Deleted ids are never reused; queries simply stop
// returning them. It reports whether the id was present.
func (ix *Index) Delete(id int) (bool, error) {
	if id < 0 || id >= len(ix.points) {
		return false, invalidArgf("id %d out of range", id)
	}
	p := ix.points[id]
	if p == nil {
		return false, nil // already deleted
	}
	if !ix.tree.Delete(p, int32(id)) {
		return false, nil
	}
	if ix.shards != nil {
		if !ix.shards.Delete(p, id) {
			return false, fmt.Errorf("wqrtq: id %d missing from its shard", id)
		}
	}
	ix.ownPoints()
	ix.points[id] = nil
	ix.resetSkyband()
	ix.resetCellIndex()
	return true, nil
}

// Clone returns a copy-on-write snapshot of the index in O(1). The snapshot
// and the receiver share all index structure; a later Insert or Delete on
// either side copies the nodes it touches first, so the other side is never
// affected. Clones are how mutations coexist with concurrent queries:
// publish a Clone, keep querying it from any number of goroutines, and
// mutate the other copy.
//
// Clone and mutations of indexes in the same clone family must be
// externally serialized with each other; queries need no synchronization.
func (ix *Index) Clone() *Index {
	c := &Index{
		tree:      ix.tree.Clone(),
		points:    ix.points[:len(ix.points):len(ix.points)],
		shared:    true,
		skyOff:    ix.skyOff,
		kct:       ix.kct,
		kernelOff: ix.kernelOff,
		cct:       ix.cct,
		cellOff:   ix.cellOff,
	}
	c.sky = skyband.NewCache(c.tree, ix.skyCounters())
	c.cells = cellindex.NewCache(c.sky, c.Dim(), c.cct)
	if ix.shards != nil {
		c.shards = ix.shards.Clone()
	}
	ix.shared = true
	return c
}

// Epoch returns the index's mutation epoch, bumped on every Clone. Two
// indexes of the same clone family never share an epoch, which makes
// (epoch, query) a sound cache key for query results.
func (ix *Index) Epoch() uint64 { return ix.tree.Epoch() }

// NumIDs returns the size of the id space: ids 0 ≤ id < NumIDs() have been
// allocated by NewIndex or Insert (some may since have been deleted; Point
// reports nil for those). Len() counts only live points.
func (ix *Index) NumIDs() int { return len(ix.points) }

// CheckInvariants verifies the structural invariants of the underlying
// R-tree and the id table; it is intended for tests.
func (ix *Index) CheckInvariants() error {
	if err := ix.tree.CheckInvariants(); err != nil {
		return err
	}
	live := 0
	for _, p := range ix.points {
		if p != nil {
			live++
		}
	}
	if live != ix.tree.Len() {
		return fmt.Errorf("wqrtq: %d live ids but %d indexed points", live, ix.tree.Len())
	}
	if ix.shards != nil {
		if err := ix.shards.CheckInvariants(ix.points); err != nil {
			return err
		}
	}
	return nil
}

// ownPoints gives the index a private copy of the id table when its backing
// array is shared with a clone, so in-place writes cannot leak across
// snapshots.
func (ix *Index) ownPoints() {
	if !ix.shared {
		return
	}
	pts := make([]vec.Point, len(ix.points), len(ix.points)+1)
	copy(pts, ix.points)
	ix.points = pts
	ix.shared = false
}

// Point returns the point stored under id, or nil if it was deleted.
func (ix *Index) Point(id int) []float64 {
	if id < 0 || id >= len(ix.points) {
		return nil
	}
	return ix.points[id]
}

// Skyline returns the ids of the Pareto-optimal points: those dominated by
// no other indexed point. These are the only products that can rank first
// under any preference.
func (ix *Index) Skyline() []int {
	live := make([]vec.Point, 0, len(ix.points))
	idx := make([]int, 0, len(ix.points))
	for i, p := range ix.points {
		if p != nil {
			live = append(live, p)
			idx = append(idx, i)
		}
	}
	sky := dominance.Skyline(live)
	out := make([]int, len(sky))
	for i, s := range sky {
		out[i] = idx[s]
	}
	sort.Ints(out)
	return out
}

// ReverseTopKParallel answers the bichromatic reverse top-k query with the
// weighting vectors spread over the given number of worker goroutines
// (workers <= 0 uses GOMAXPROCS). The result is identical to ReverseTopK.
// It is a thin wrapper over ReverseTopKParallelCtx with
// context.Background().
func (ix *Index) ReverseTopKParallel(W [][]float64, q []float64, k, workers int) ([]int, error) {
	resp, err := ix.ReverseTopKParallelCtx(context.Background(), ReverseTopKRequest{Q: q, K: k, W: W}, workers)
	if err != nil {
		return nil, err
	}
	return resp.Result, nil
}

// ReverseTopKParallelCtx is the context-first form of ReverseTopKParallel:
// one cancellation unwinds every worker of the fan-out cooperatively.
func (ix *Index) ReverseTopKParallelCtx(ctx context.Context, req ReverseTopKRequest, workers int) (ReverseTopKResponse, error) {
	resp := ReverseTopKResponse{Epoch: ix.Epoch()}
	ws, err := ix.checkWeights(req.W)
	if err != nil {
		return resp, err
	}
	if err := ix.checkPoint(req.Q); err != nil {
		return resp, err
	}
	if req.K <= 0 {
		return resp, errPositiveK
	}
	if err := ctx.Err(); err != nil {
		return resp, err
	}
	start := time.Now()
	t := ix.tree
	candSize := ix.tree.Len()
	if b := ix.band(req.K); b != nil {
		t = b.Tree()
		candSize = b.Size()
	}
	res, stats, err := rtopk.BichromaticParallelCtx(ctx, t, ws, req.Q, req.K, workers)
	if err != nil {
		return resp, err
	}
	resp.Result = res
	stats.CandidateSetSize = candSize
	resp.RTA = toRTAStats(stats)
	resp.Elapsed = time.Since(start)
	return resp, nil
}
