package wqrtq

import (
	"errors"
	"fmt"
	"sort"

	"wqrtq/internal/dominance"
	"wqrtq/internal/rtopk"
	"wqrtq/internal/vec"
)

// Insert adds a point to the index and returns its id (the position it
// would have had in the NewIndex input). The point slice is retained.
//
// Mutations are not safe concurrently with queries or other mutations;
// queries from multiple goroutines remain safe between mutations.
func (ix *Index) Insert(p []float64) (int, error) {
	if err := ix.checkPoint(p); err != nil {
		return 0, err
	}
	id := len(ix.points)
	ix.points = append(ix.points, vec.Point(p))
	ix.tree.Insert(p, int32(id))
	return id, nil
}

// Delete removes the point with the given id (as returned by NewIndex
// ordering or Insert). Deleted ids are never reused; queries simply stop
// returning them. It reports whether the id was present.
func (ix *Index) Delete(id int) (bool, error) {
	if id < 0 || id >= len(ix.points) {
		return false, fmt.Errorf("wqrtq: id %d out of range", id)
	}
	p := ix.points[id]
	if p == nil {
		return false, nil // already deleted
	}
	if !ix.tree.Delete(p, int32(id)) {
		return false, nil
	}
	ix.points[id] = nil
	return true, nil
}

// Point returns the point stored under id, or nil if it was deleted.
func (ix *Index) Point(id int) []float64 {
	if id < 0 || id >= len(ix.points) {
		return nil
	}
	return ix.points[id]
}

// Skyline returns the ids of the Pareto-optimal points: those dominated by
// no other indexed point. These are the only products that can rank first
// under any preference.
func (ix *Index) Skyline() []int {
	live := make([]vec.Point, 0, len(ix.points))
	idx := make([]int, 0, len(ix.points))
	for i, p := range ix.points {
		if p != nil {
			live = append(live, p)
			idx = append(idx, i)
		}
	}
	sky := dominance.Skyline(live)
	out := make([]int, len(sky))
	for i, s := range sky {
		out[i] = idx[s]
	}
	sort.Ints(out)
	return out
}

// ReverseTopKParallel answers the bichromatic reverse top-k query with the
// weighting vectors spread over the given number of worker goroutines
// (workers <= 0 uses GOMAXPROCS). The result is identical to ReverseTopK.
func (ix *Index) ReverseTopKParallel(W [][]float64, q []float64, k, workers int) ([]int, error) {
	ws, err := ix.checkWeights(W)
	if err != nil {
		return nil, err
	}
	if err := ix.checkPoint(q); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, errors.New("wqrtq: k must be positive")
	}
	return rtopk.BichromaticParallel(ix.tree, ws, q, k, workers), nil
}
