package wqrtq

import (
	"context"
	"wqrtq/internal/feq"

	"wqrtq/internal/core"
	"wqrtq/internal/vec"
)

// PenaltyModel mirrors the paper's penalty tolerances: Alpha/Beta weight the
// changes of k and Wm (Eq. 4, Alpha+Beta = 1); Gamma/Lambda weight the
// changes of q and (Wm, k) (Eq. 5, Gamma+Lambda = 1). The zero value is
// replaced by the paper's default 0.5/0.5/0.5/0.5 (§5.1).
//
// NormalizeWeights switches ΔWm to the printed Eq. (4) normalization by
// √(2·|Wm|); the default reproduces the paper's worked examples (see
// DESIGN.md).
type PenaltyModel struct {
	Alpha, Beta      float64
	Gamma, Lambda    float64
	NormalizeWeights bool
}

// Options tunes the refinement algorithms.
type Options struct {
	// Penalty is the penalty model; zero value = paper defaults.
	Penalty PenaltyModel
	// SampleSize is |S|, the number of weighting-vector samples used by
	// ModifyPreferences and ModifyAll (default 800, Table 1).
	SampleSize int
	// QuerySampleSize is |Q|, the number of query-point samples used by
	// ModifyAll; defaults to SampleSize as in §5.1 ("the sample sizes of
	// weighting vectors and |Q| are identical in our experiments").
	QuerySampleSize int
	// Seed makes the sampling deterministic (default 1).
	Seed int64
	// PerVector switches ModifyPreferences to the paper's first candidate
	// strategy (§4.3): replace each why-not vector with its own closest
	// sample independently. ΔWm is then individually minimal, but the total
	// penalty can exceed the default Lemma 6 scan.
	PerVector bool
	// Workers > 0 parallelizes ModifyAll across that many goroutines
	// (Workers < 0 uses GOMAXPROCS). Results are identical for every
	// worker count at a fixed Seed. Zero keeps the sequential Algorithm 3.
	Workers int
}

func (o Options) resolve() (core.PenaltyModel, int, int, int64, error) {
	pm := core.PenaltyModel{
		Alpha: o.Penalty.Alpha, Beta: o.Penalty.Beta,
		Gamma: o.Penalty.Gamma, Lambda: o.Penalty.Lambda,
		NormalizeWeights: o.Penalty.NormalizeWeights,
	}
	if feq.Zero(pm.Alpha) && feq.Zero(pm.Beta) {
		pm.Alpha, pm.Beta = 0.5, 0.5
	}
	if feq.Zero(pm.Gamma) && feq.Zero(pm.Lambda) {
		pm.Gamma, pm.Lambda = 0.5, 0.5
	}
	if err := pm.Validate(); err != nil {
		return pm, 0, 0, 0, invalidArg(err)
	}
	s := o.SampleSize
	if s == 0 {
		s = 800
	}
	if s < 0 {
		return pm, 0, 0, 0, invalidArgf("negative sample size %d", s)
	}
	qs := o.QuerySampleSize
	if qs == 0 {
		qs = s
	}
	if qs < 0 {
		return pm, 0, 0, 0, invalidArgf("negative query sample size %d", qs)
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	return pm, s, qs, seed, nil
}

// QueryRefinement is the answer of ModifyQuery (solution 1, MQP).
type QueryRefinement struct {
	// Q is the refined product: the point of the safe region closest to
	// the original query point.
	Q []float64
	// Penalty is ‖q'-q‖/‖q‖ (Eq. 1).
	Penalty float64
}

// PreferenceRefinement is the answer of ModifyPreferences (solution 2, MWK).
type PreferenceRefinement struct {
	// Wm are the refined weighting vectors, aligned with the input set.
	Wm [][]float64
	// K is the refined parameter k'.
	K int
	// Penalty is α·Δk/Δkmax + β·ΔWm (Eq. 4).
	Penalty float64
	// KMax is k'max (Lemma 4), the k' that would admit q with Wm unchanged.
	KMax int
}

// FullRefinement is the answer of ModifyAll (solution 3, MQWK).
type FullRefinement struct {
	Q  []float64
	Wm [][]float64
	K  int
	// Penalty is γ·Penalty(q') + λ·Penalty(Wm', k') (Eq. 5).
	Penalty float64
}

// ModifyQuery refines the query point q with minimum penalty so that every
// weighting vector in Wm ranks the refined point within its top-k
// (Algorithm 1, MQP). It is a thin wrapper over ModifyQueryCtx with
// context.Background().
func (ix *Index) ModifyQuery(q []float64, k int, Wm [][]float64, opts Options) (QueryRefinement, error) {
	resp, err := ix.ModifyQueryCtx(context.Background(), ModifyQueryRequest{Q: q, K: k, Wm: Wm, Opts: opts})
	if err != nil {
		return QueryRefinement{}, err
	}
	return resp.Refinement, nil
}

// ModifyPreferences refines the why-not weighting vectors and the parameter
// k with minimum penalty so that q enters the top-k' of every refined
// vector (Algorithm 2, MWK). It is a thin wrapper over ModifyPreferencesCtx
// with context.Background().
func (ix *Index) ModifyPreferences(q []float64, k int, Wm [][]float64, o Options) (PreferenceRefinement, error) {
	resp, err := ix.ModifyPreferencesCtx(context.Background(), ModifyPreferencesRequest{Q: q, K: k, Wm: Wm, Opts: o})
	if err != nil {
		return PreferenceRefinement{}, err
	}
	return resp.Refinement, nil
}

// ModifyAll refines the query point, the why-not vectors and k
// simultaneously (Algorithm 3, MQWK). It is a thin wrapper over
// ModifyAllCtx with context.Background().
func (ix *Index) ModifyAll(q []float64, k int, Wm [][]float64, o Options) (FullRefinement, error) {
	resp, err := ix.ModifyAllCtx(context.Background(), ModifyAllRequest{Q: q, K: k, Wm: Wm, Opts: o})
	if err != nil {
		return FullRefinement{}, err
	}
	return resp.Refinement, nil
}

// Verify checks the defining property of a refined query: every weighting
// vector in Wm ranks q within its top-k.
func (ix *Index) Verify(q []float64, k int, Wm [][]float64) (bool, error) {
	ws, err := ix.checkWeights(Wm)
	if err != nil {
		return false, err
	}
	if err := ix.checkPoint(q); err != nil {
		return false, err
	}
	return core.VerifyRefinement(ix.tree, q, k, ws), nil
}

// WhyNotAnswer bundles the full pipeline output of Index.WhyNot.
type WhyNotAnswer struct {
	// Result is the bichromatic reverse top-k result (indices into W).
	Result []int
	// RTA reports the pruning statistics of the reverse top-k stage.
	RTA RTAStats
	// Missing is W minus Result: the why-not candidates.
	Missing []int
	// Explanations[i] lists the points responsible for excluding
	// W[Missing[i]], in rank order (first aspect, §3).
	Explanations [][]Ranked
	// The three refinement suggestions (second aspect, §4); each makes
	// every missing vector part of the refined result.
	ModifiedQuery       QueryRefinement
	ModifiedPreferences PreferenceRefinement
	ModifiedAll         FullRefinement
}

// WhyNot runs the complete why-not pipeline for the reverse top-k query of
// q over W: it computes the result, identifies the missing vectors,
// explains each omission, and produces all three refinement suggestions.
// If nothing is missing, only Result is populated. It is a thin wrapper
// over WhyNotCtx with context.Background().
func (ix *Index) WhyNot(q []float64, k int, W [][]float64, opts Options) (*WhyNotAnswer, error) {
	resp, err := ix.WhyNotCtx(context.Background(), WhyNotRequest{Q: q, K: k, W: W, Opts: opts})
	if err != nil {
		return nil, err
	}
	return resp.Answer, nil
}

func weightsToFloats(ws []vec.Weight) [][]float64 {
	out := make([][]float64, len(ws))
	for i, w := range ws {
		out[i] = w
	}
	return out
}
