package wqrtq

// BenchmarkSkyband measures the k-skyband sub-index on the three hot
// reverse-top-k-shaped endpoints, skyband on vs off, at the
// BENCH_shard.json configuration (d = 3, k = 10, |W| = 200, |Wm| = 20,
// |S| = 16) for n in {20k, 100k}. TestRecordBench re-runs the n = 20k
// cells through testing.Benchmark and writes BENCH_skyband.json with the
// run environment (gomaxprocs included) recorded from the process itself,
// so committed snapshots are reproducible rather than hand-annotated:
//
//	RECORD_BENCH=1 go test -run TestRecordBench .

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"wqrtq/internal/dataset"
	"wqrtq/internal/sample"
)

// skybandBenchEnv is one benchmark cell: a prebuilt index (skyband on or
// off) plus the shared workload.
type skybandBenchEnv struct {
	ix   *Index
	w    []float64
	q    []float64
	W    [][]float64
	wnW  [][]float64
	opts Options
}

func newSkybandBenchEnv(tb testing.TB, n int, skybandOn bool) *skybandBenchEnv {
	tb.Helper()
	ds := dataset.Independent(n, benchDim, 1)
	pts := make([][]float64, len(ds.Points))
	for i, p := range ds.Points {
		pts[i] = p
	}
	ix, err := NewIndex(pts)
	if err != nil {
		tb.Fatal(err)
	}
	ix.SetSkyband(skybandOn)
	rng := rand.New(rand.NewSource(13))
	W := make([][]float64, 200)
	for i := range W {
		W[i] = sample.RandSimplex(rng, benchDim)
	}
	return &skybandBenchEnv{
		ix:   ix,
		w:    []float64{0.2, 0.3, 0.5},
		q:    []float64{0.02, 0.03, 0.02},
		W:    W,
		wnW:  W[:20],
		opts: Options{SampleSize: 16, Seed: 1},
	}
}

func (e *skybandBenchEnv) run(b *testing.B, endpoint string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		var err error
		switch endpoint {
		case "ReverseTopK":
			_, err = e.ix.ReverseTopK(e.W, e.q, benchK)
		case "WhyNot":
			_, err = e.ix.WhyNot(e.q, benchK, e.wnW, e.opts)
		case "Rank":
			_, err = e.ix.Rank(e.w, e.q)
		default:
			b.Fatalf("unknown endpoint %q", endpoint)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

var skybandBenchEndpoints = []string{"ReverseTopK", "WhyNot", "Rank"}

func BenchmarkSkyband(b *testing.B) {
	for _, n := range []int{20000, 100000} {
		for _, mode := range []string{"on", "off"} {
			env := newSkybandBenchEnv(b, n, mode == "on")
			for _, ep := range skybandBenchEndpoints {
				b.Run(fmt.Sprintf("n=%d/skyband=%s/%s", n, mode, ep), func(b *testing.B) {
					env.run(b, ep)
				})
			}
		}
	}
}

// benchRecord is one row of a committed benchmark snapshot.
type benchRecord struct {
	N          int     `json:"n"`
	Skyband    string  `json:"skyband,omitempty"`
	Kernel     string  `json:"kernel,omitempty"`
	CellIndex  string  `json:"cellindex,omitempty"`
	Fsync      string  `json:"fsync,omitempty"`
	Endpoint   string  `json:"endpoint"`
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	ReqPerSec  float64 `json:"requests_per_sec"`
}

// benchSnapshot is the BENCH_*.json document shape. Every environment
// field is captured from the running process — gomaxprocs in particular
// was hand-edited prose in earlier snapshots and is now recorded from the
// run itself.
type benchSnapshot struct {
	Benchmark  string        `json:"benchmark"`
	Date       string        `json:"date"`
	Go         string        `json:"go"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	GOAMD64    string        `json:"goamd64"`
	NumCPU     int           `json:"num_cpu"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Dataset    any           `json:"dataset"`
	Note       string        `json:"note"`
	Results    []benchRecord `json:"results"`
}

// TestRecordBench regenerates BENCH_skyband.json. It is skipped unless
// RECORD_BENCH is set (it takes minutes), keeping the recording mechanism
// compiled and in lockstep with the benchmark code it snapshots.
func TestRecordBench(t *testing.T) {
	if os.Getenv("RECORD_BENCH") == "" {
		t.Skip("set RECORD_BENCH=1 to re-record BENCH_skyband.json")
	}
	const n = 20000
	snap := newBenchSnapshot("BenchmarkSkyband",
		"Recorded by `RECORD_BENCH=1 go test -run TestRecordBench$ .` — the environment "+
			"fields above come from the recording process itself. skyband=off preserves the "+
			"pre-sub-index execution paths (the -skyband=off ablation); results are bit-identical "+
			"either way (TestSkybandDifferential). Compare against BENCH_shard.json (same dataset "+
			"configuration) for the cross-release trajectory.", n)
	for _, mode := range []string{"on", "off"} {
		env := newSkybandBenchEnv(t, n, mode == "on")
		// Warm the epoch caches so the recorded steady-state numbers do not
		// fold one-time band construction into the first iteration.
		if _, err := env.ix.ReverseTopK(env.W, env.q, benchK); err != nil {
			t.Fatal(err)
		}
		for _, ep := range skybandBenchEndpoints {
			res := testing.Benchmark(func(b *testing.B) { env.run(b, ep) })
			ns := float64(res.T.Nanoseconds()) / float64(res.N)
			snap.Results = append(snap.Results, benchRecord{
				N: n, Skyband: mode, Endpoint: ep,
				Iterations: res.N, NsPerOp: ns, ReqPerSec: 1e9 / ns,
			})
		}
	}
	writeBenchSnapshot(t, "BENCH_skyband.json", snap)
}

// writeBenchSnapshot commits one benchmark snapshot document; shared by
// the RECORD_BENCH recorders.
func writeBenchSnapshot(t *testing.T, path string, snap benchSnapshot) {
	t.Helper()
	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d results)", path, len(snap.Results))
}

// newBenchSnapshot captures the run environment for one snapshot document.
func newBenchSnapshot(benchmark, note string, n int) benchSnapshot {
	return benchSnapshot{
		Benchmark:  benchmark,
		Date:       time.Now().UTC().Format("2006-01-02"),
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOAMD64:    goamd64(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Dataset: map[string]any{
			"shape": "independent", "n": n, "d": benchDim, "k": benchK,
			"reverse_topk_vectors": 200, "whynot_vectors": 20, "whynot_samples": 16,
		},
		Note: note,
	}
}

// goamd64 resolves the microarchitecture level the recording binary was
// compiled for: the build info of the test binary itself when stamped,
// else the GOAMD64 environment variable, else "unknown". Kernel-level
// numbers (FMA contraction, bounds-check-free sweeps) are not comparable
// across levels, so the snapshot must say which one produced them.
func goamd64() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "GOAMD64" {
				return s.Value
			}
		}
	}
	if v := os.Getenv("GOAMD64"); v != "" {
		return v
	}
	return "unknown"
}
