// Module tools pins the versions of the lint/audit binaries CI installs
// (the tool directives below), so bumping staticcheck or govulncheck is a
// reviewed diff here instead of an ad-hoc @version string in a workflow
// file. It is a separate module: the tools and their dependency trees stay
// out of the main module's build graph, and the root ./... patterns never
// descend into it.
//
// CI runs `go mod tidy && go install tool` in this directory; tidy fills in
// the indirect requirements and checksums for the pinned versions below
// (this repo vendors no go.sum for them — the direct pins fully determine
// the resolution via MVS).
module wqrtq/tools

go 1.24

tool (
	golang.org/x/vuln/cmd/govulncheck
	honnef.co/go/tools/cmd/staticcheck
)

require (
	golang.org/x/vuln v1.1.4
	honnef.co/go/tools v0.6.1 // staticcheck 2025.1.1
)
